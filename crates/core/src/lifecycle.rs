//! Per-job runtime state and the execution cursor.

use elastisim_des::{ActivityId, TimerId};
use elastisim_platform::NodeId;
use elastisim_workload::{ApplicationModel, JobSpec};

/// Where a job stands in its application.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub(crate) struct Cursor {
    /// Index into `app.phases`.
    pub phase: usize,
    /// Iteration within the phase.
    pub iter: u32,
    /// Index into the phase's task list.
    pub task: usize,
}

/// What the cursor encounters while advancing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Step {
    /// Execute the task at the current cursor position.
    Task,
    /// An iteration of a scheduling-point phase just ended (reconfigure
    /// opportunity); cursor already points at the next position.
    SchedulingPoint,
    /// A new phase was entered; its evolving request (if any) should fire.
    PhaseEntry,
    /// The application is complete.
    Done,
}

impl Cursor {
    /// Returns what to do at the current cursor position, advancing over
    /// empty constructs. `advance_after_task` must be called once a task
    /// completes.
    pub(crate) fn step(&mut self, app: &ApplicationModel) -> Step {
        loop {
            let Some(phase) = app.phases.get(self.phase) else {
                return Step::Done;
            };
            if self.iter >= phase.iterations.max(1) {
                // Phase exhausted: move on.
                self.phase += 1;
                self.iter = 0;
                self.task = 0;
                if app.phases.get(self.phase).is_some() {
                    return Step::PhaseEntry;
                }
                return Step::Done;
            }
            if self.task >= phase.tasks.len() {
                // Iteration finished.
                self.iter += 1;
                self.task = 0;
                if phase.scheduling_point {
                    return Step::SchedulingPoint;
                }
                continue;
            }
            return Step::Task;
        }
    }

    /// Moves past the task that just completed.
    pub(crate) fn advance_after_task(&mut self) {
        self.task += 1;
    }
}

/// Lifecycle state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum RunState {
    /// Submitted, waiting in the queue.
    Pending,
    /// Executing tasks.
    Running,
    /// Paused while a reconfiguration cost is paid.
    Reconfiguring,
    /// Left the system.
    Done,
}

/// Which part of the current task is in flight.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Stage {
    /// The network-latency prologue of a comm/I/O task.
    Latency,
    /// The flow activities themselves.
    Flow,
}

/// Everything the engine tracks about one job.
pub(crate) struct JobRuntime {
    pub spec: JobSpec,
    pub state: RunState,
    pub alloc: Vec<NodeId>,
    pub cursor: Cursor,
    pub stage: Stage,
    /// Rank activities of the current task (or reconfig) still running.
    pub outstanding: usize,
    /// Live activity ids, for cancellation on kill.
    pub activities: Vec<ActivityId>,
    /// Bumped on kill/completion so stale events are ignored.
    pub epoch: u64,
    /// Scheduler-ordered allocation change awaiting the next scheduling
    /// point (complete new node set; additions already reserved).
    pub pending_reconfig: Option<Vec<NodeId>>,
    /// Evolving: node count the application currently wants, and when it
    /// asked (for the satisfaction-latency metric).
    pub evolving_desired: Option<(u32, f64)>,
    pub start_time: Option<f64>,
    pub walltime_timer: Option<TimerId>,
    // -- accounting --
    pub node_seconds: f64,
    pub last_alloc_change: f64,
    pub max_nodes_held: u32,
    pub reconfigs: u32,
    pub evolving_latencies: Vec<f64>,
    pub units_done: u64,
    pub units_total: u64,
}

impl JobRuntime {
    pub(crate) fn new(spec: JobSpec) -> Self {
        let units_total = spec.app.total_task_executions().max(1);
        JobRuntime {
            spec,
            state: RunState::Pending,
            alloc: Vec::new(),
            cursor: Cursor::default(),
            stage: Stage::Flow,
            outstanding: 0,
            activities: Vec::new(),
            epoch: 0,
            pending_reconfig: None,
            evolving_desired: None,
            start_time: None,
            walltime_timer: None,
            node_seconds: 0.0,
            last_alloc_change: 0.0,
            max_nodes_held: 0,
            reconfigs: 0,
            evolving_latencies: Vec::new(),
            units_done: 0,
            units_total,
        }
    }

    /// Accrues node-seconds up to `now` (call before every allocation
    /// change and at completion).
    pub(crate) fn accrue(&mut self, now: f64) {
        self.node_seconds += self.alloc.len() as f64 * (now - self.last_alloc_change);
        self.last_alloc_change = now;
    }

    /// Fraction of task executions completed.
    pub(crate) fn progress(&self) -> f64 {
        self.units_done as f64 / self.units_total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastisim_workload::{PerfExpr, Phase, Task};

    fn app(phases: Vec<Phase>) -> ApplicationModel {
        ApplicationModel::new(phases)
    }

    fn compute() -> Task {
        Task::compute("c", PerfExpr::constant(1.0))
    }

    #[test]
    fn cursor_walks_tasks_iterations_phases() {
        let a = app(vec![
            Phase::repeated("p0", 2, vec![compute(), compute()]),
            Phase::once("p1", vec![compute()]),
        ]);
        let mut c = Cursor::default();
        let mut trace = Vec::new();
        loop {
            let s = c.step(&a);
            trace.push(s);
            match s {
                Step::Task => c.advance_after_task(),
                Step::Done => break,
                _ => {}
            }
        }
        use Step::*;
        assert_eq!(
            trace,
            vec![
                Task,
                Task,
                SchedulingPoint, // p0 iter 0
                Task,
                Task,
                SchedulingPoint, // p0 iter 1
                PhaseEntry,
                Task,
                SchedulingPoint, // p1
                Done
            ]
        );
    }

    #[test]
    fn cursor_skips_empty_phase() {
        let a = app(vec![
            Phase::once("empty", vec![]),
            Phase::once("p", vec![compute()]),
        ]);
        let mut c = Cursor::default();
        // Empty phase: iteration ends immediately → scheduling point.
        assert_eq!(c.step(&a), Step::SchedulingPoint);
        assert_eq!(c.step(&a), Step::PhaseEntry);
        assert_eq!(c.step(&a), Step::Task);
    }

    #[test]
    fn cursor_without_scheduling_points_flows_through() {
        let a = app(vec![
            Phase::repeated("p", 3, vec![compute()]).without_scheduling_point()
        ]);
        let mut c = Cursor::default();
        let mut tasks = 0;
        loop {
            match c.step(&a) {
                Step::Task => {
                    tasks += 1;
                    c.advance_after_task();
                }
                Step::Done => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(tasks, 3);
    }

    #[test]
    fn empty_application_is_done_immediately() {
        let a = app(vec![]);
        let mut c = Cursor::default();
        assert_eq!(c.step(&a), Step::Done);
    }

    #[test]
    fn accrue_integrates_alloc() {
        let spec = JobSpec::rigid(1, 0.0, 2, app(vec![Phase::once("p", vec![compute()])]));
        let mut rt = JobRuntime::new(spec);
        rt.alloc = vec![NodeId(0), NodeId(1)];
        rt.last_alloc_change = 10.0;
        rt.accrue(25.0);
        assert_eq!(rt.node_seconds, 30.0);
        assert_eq!(rt.last_alloc_change, 25.0);
    }

    #[test]
    fn progress_fraction() {
        let spec = JobSpec::rigid(
            1,
            0.0,
            2,
            app(vec![Phase::repeated("p", 4, vec![compute()])]),
        );
        let mut rt = JobRuntime::new(spec);
        assert_eq!(rt.progress(), 0.0);
        rt.units_done = 2;
        assert_eq!(rt.progress(), 0.5);
    }
}
