//! Flight recorder: a bounded ring of recent [`SimEvent`]s for post-mortems.
//!
//! When a run dies — a scheduler panic, a fatal [`SimError`], an invariant
//! violation — the one-line error message says *what* happened but not
//! what the simulation was doing. The flight recorder keeps the last N
//! events of the observer stream in a fixed-size ring; on failure the
//! campaign executor (or the CLI) dumps the ring, the run's identity, and
//! the telemetry snapshot as one structured JSON document, turning an
//! ephemeral fuzzer or production failure into a diagnosable artifact.
//!
//! Like [`InvariantChecker`](crate::InvariantChecker), the recorder is a
//! handle around `Arc<Mutex<…>>`: [`FlightRecorder::observer`] hands the
//! simulation a recording observer while the caller keeps the handle, so
//! the ring survives `Simulation::try_run` consuming the simulation — and
//! survives the panic that made the dump necessary (locks forgive
//! poisoning). The observer buffers its tail locally and publishes it to
//! the shared ring on drop — which happens during panic unwinding too —
//! so the per-event path touches no lock and no shared state. Recording
//! never feeds back into simulation decisions, so reports are
//! byte-identical with or without a recorder attached.
//!
//! [`SimError`]: crate::SimError

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

use elastisim_telemetry::MetricsSnapshot;
use serde::Value;

use crate::observe::{Observer, SimEvent};

/// Format tag stamped into every post-mortem document.
pub const POSTMORTEM_FORMAT: &str = "pm1";

/// Default ring capacity: enough tail to see the scheduling decisions
/// leading into a failure without post-mortems growing unbounded.
pub const DEFAULT_RING_CAPACITY: usize = 256;

struct RecorderState {
    ring: VecDeque<SimEvent>,
    seen: u64,
}

/// Bounded ring-buffer of the most recent simulation events.
///
/// Cheap to clone; clones share the ring. See the module docs for the
/// intended panic-surviving usage pattern.
#[derive(Clone)]
pub struct FlightRecorder {
    state: Arc<Mutex<RecorderState>>,
    capacity: usize,
}

fn lock(state: &Mutex<RecorderState>) -> MutexGuard<'_, RecorderState> {
    state
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (at least 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            state: Arc::new(Mutex::new(RecorderState {
                ring: VecDeque::with_capacity(capacity),
                seen: 0,
            })),
            capacity,
        }
    }

    /// The ring capacity this recorder was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A boxed observer feeding this recorder, for
    /// [`Simulation::add_observer`](crate::Simulation::add_observer).
    ///
    /// The observer buffers events in a ring it owns — no lock, no shared
    /// state on the per-event path — and publishes into this handle's
    /// shared ring when it is dropped. Dropping is exactly when the tail
    /// becomes readable: a completed or failed `try_run` has consumed the
    /// simulation (observers and all), and a panicking run drops its
    /// observers during unwinding, before `catch_unwind` returns to the
    /// code that dumps the post-mortem. Readers that hold an observer
    /// directly (tests, custom harnesses) must drop it before inspecting
    /// the handle.
    pub fn observer(&self) -> Box<dyn Observer> {
        Box::new(RecorderObserver {
            ring: VecDeque::with_capacity(self.capacity),
            seen: 0,
            recorder: self.clone(),
        })
    }

    /// Records one event directly into the shared ring (for callers that
    /// do not go through an [`observer`](Self::observer), e.g. tests).
    pub fn record(&self, event: &SimEvent) {
        let mut st = lock(&self.state);
        if st.ring.len() == self.capacity {
            st.ring.pop_front();
        }
        st.ring.push_back(event.clone());
        st.seen += 1;
    }

    /// Total events observed, including those evicted from the ring.
    pub fn events_seen(&self) -> u64 {
        lock(&self.state).seen
    }

    /// The retained tail of the event stream, oldest first.
    pub fn events(&self) -> Vec<SimEvent> {
        lock(&self.state).ring.iter().cloned().collect()
    }

    /// Renders a structured post-mortem document.
    ///
    /// * `reason` — machine-readable failure class (`"panicked"`,
    ///   `"sim_error"`, `"invariant_violation"`);
    /// * `message` — the human-readable error;
    /// * `context` — run identity (campaign id, fingerprint, run id,
    ///   scheduler, …), emitted in the given order;
    /// * `metrics` — the run's telemetry snapshot at time of death.
    ///
    /// The document is pretty-printed JSON tagged with
    /// [`POSTMORTEM_FORMAT`] and carries the ring (`events`, oldest
    /// first), the total `events_seen`, and the `ring_capacity` so
    /// consumers can tell a complete stream from a truncated tail.
    pub fn postmortem_json(
        &self,
        reason: &str,
        message: &str,
        context: &[(&str, Value)],
        metrics: &MetricsSnapshot,
    ) -> String {
        let st = lock(&self.state);
        let mut map = vec![
            (
                "postmortem".to_owned(),
                Value::Str(POSTMORTEM_FORMAT.to_owned()),
            ),
            ("reason".to_owned(), Value::Str(reason.to_owned())),
            ("message".to_owned(), Value::Str(message.to_owned())),
        ];
        for (k, v) in context {
            map.push(((*k).to_owned(), v.clone()));
        }
        map.push(("events_seen".to_owned(), Value::Num(st.seen as f64)));
        map.push(("ring_capacity".to_owned(), Value::Num(self.capacity as f64)));
        let events: Vec<Value> = st
            .ring
            .iter()
            .map(|e| serde::to_value(e).expect("SimEvent serializes"))
            .collect();
        map.push(("events".to_owned(), Value::Seq(events)));
        map.push((
            "metrics".to_owned(),
            serde::to_value(metrics).expect("snapshot serializes"),
        ));
        serde_json::to_string_pretty(&Value::Map(map)).expect("postmortem serializes")
    }
}

struct RecorderObserver {
    /// Locally owned tail: always holds the last `capacity` events this
    /// observer saw, so it can replace the shared ring wholesale on drop.
    ring: VecDeque<SimEvent>,
    seen: u64,
    recorder: FlightRecorder,
}

impl Observer for RecorderObserver {
    fn on_event(&mut self, event: &SimEvent) {
        if self.ring.len() == self.recorder.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(event.clone());
        self.seen += 1;
    }
}

impl Drop for RecorderObserver {
    fn drop(&mut self) {
        // Publish the buffered tail. Runs on normal completion (`try_run`
        // consumes the simulation) and during panic unwinding alike; the
        // lock forgives poisoning, so this cannot double-panic.
        let mut st = lock(&self.recorder.state);
        st.seen += self.seen;
        for event in self.ring.drain(..) {
            if st.ring.len() == self.recorder.capacity {
                st.ring.pop_front();
            }
            st.ring.push_back(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warning(time: f64, i: usize) -> SimEvent {
        SimEvent::SchedulerInvoked {
            time,
            reason: format!("r{i}"),
            decisions: i,
            applied: 0,
        }
    }

    #[test]
    fn ring_keeps_only_the_tail() {
        let rec = FlightRecorder::new(3);
        let mut obs = rec.observer();
        for i in 0..5 {
            obs.on_event(&warning(i as f64, i));
        }
        // The observer publishes its buffered tail on drop.
        drop(obs);
        assert_eq!(rec.events_seen(), 5);
        let tail = rec.events();
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[0].time(), 2.0);
        assert_eq!(tail[2].time(), 4.0);
    }

    #[test]
    fn capacity_is_at_least_one() {
        let rec = FlightRecorder::new(0);
        assert_eq!(rec.capacity(), 1);
        rec.record(&warning(0.0, 0));
        rec.record(&warning(1.0, 1));
        assert_eq!(rec.events().len(), 1);
        assert_eq!(rec.events_seen(), 2);
    }

    #[test]
    fn clones_share_the_ring() {
        let rec = FlightRecorder::new(8);
        let clone = rec.clone();
        clone.record(&warning(0.0, 0));
        assert_eq!(rec.events_seen(), 1);
    }

    #[test]
    fn postmortem_is_structured_json() {
        let rec = FlightRecorder::new(2);
        for i in 0..4 {
            rec.record(&warning(i as f64, i));
        }
        let t = elastisim_telemetry::Telemetry::enabled();
        t.counter_add("des.events_delivered", 4);
        let json = rec.postmortem_json(
            "panicked",
            "scheduler exploded",
            &[
                ("run_id", Value::Num(3.0)),
                ("fingerprint", Value::Str("sfp1-abc".to_owned())),
            ],
            &t.snapshot(),
        );
        let parsed = serde_json::parse_value(&json).expect("valid JSON");
        let Value::Map(mut map) = parsed else {
            panic!("postmortem is not an object");
        };
        assert_eq!(
            serde::map_take(&mut map, "postmortem"),
            Some(Value::Str(POSTMORTEM_FORMAT.to_owned()))
        );
        assert_eq!(
            serde::map_take(&mut map, "reason"),
            Some(Value::Str("panicked".to_owned()))
        );
        assert_eq!(serde::map_take(&mut map, "run_id"), Some(Value::Num(3.0)));
        assert_eq!(
            serde::map_take(&mut map, "events_seen"),
            Some(Value::Num(4.0))
        );
        let Some(Value::Seq(events)) = serde::map_take(&mut map, "events") else {
            panic!("events missing");
        };
        assert_eq!(events.len(), 2);
        let Some(Value::Map(metrics)) = serde::map_take(&mut map, "metrics") else {
            panic!("metrics missing");
        };
        assert!(metrics.iter().any(|(k, _)| k == "counters"));
    }

    #[test]
    fn recorder_survives_a_panicking_holder() {
        let rec = FlightRecorder::new(4);
        let clone = rec.clone();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            clone.record(&warning(0.0, 0));
            panic!("simulated run panic");
        }));
        // The ring is intact and usable after the panic.
        rec.record(&warning(1.0, 1));
        assert_eq!(rec.events_seen(), 2);
        assert!(!rec
            .postmortem_json("panicked", "boom", &[], &MetricsSnapshot::default())
            .is_empty());
    }
}
