//! Runtime invariant checking over the [`SimEvent`] stream.
//!
//! The [`InvariantChecker`] is an [`Observer`] that replays the engine's
//! event stream against an independent model of what a *legal* run looks
//! like: node allocations never exceed capacity, no node is assigned to two
//! jobs at once, simulated time is monotone, and every job follows the
//! Feitelson–Rudolph state machine of its elasticity class (rigid and
//! moldable jobs never resize, reconfigurations stay within
//! `[min_nodes, max_nodes]`). After the run, [`InvariantChecker::check_report`]
//! cross-checks the final [`Report`] accounting — start/end times,
//! node-second integrals, the utilization series, the Gantt trace — against
//! what the event stream implies.
//!
//! Violations are structured: each carries the rule name, the simulated
//! time, and the offending event serialized as JSON, so a conformance
//! failure names exactly what went wrong. The checker never panics on its
//! own; callers decide (tests `assert_clean`, the CLI's
//! `--check-invariants` renders violations as warnings).
//!
//! The checker deliberately duplicates collector logic from
//! [`crate::observe`] rather than reusing it: an independent
//! re-implementation is what makes the cross-check meaningful.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, Mutex, MutexGuard};

use elastisim_platform::NodeId;
use elastisim_workload::{JobClass, JobId, JobSpec};
use serde::Serialize;

use crate::observe::{Observer, SimEvent};
use crate::stats::{GanttEntry, Outcome, Report};

/// Tolerance for comparing accumulated f64 quantities (node-seconds).
const EPS: f64 = 1e-6;

/// One broken invariant: which rule, when, and the offending event.
#[derive(Clone, PartialEq, Debug, Serialize)]
pub struct InvariantViolation {
    /// Simulated time of the offending event (or the report check).
    pub time: f64,
    /// Stable rule identifier, e.g. `node-double-assigned`.
    pub rule: &'static str,
    /// The offending event as tagged JSON (`None` for report-level checks).
    pub event: Option<String>,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] t={:.3}: {}", self.rule, self.time, self.message)?;
        if let Some(ev) = &self.event {
            write!(f, " (event: {ev})")?;
        }
        Ok(())
    }
}

/// Where a job is in its lifecycle, as reconstructed from events.
#[derive(Clone, Copy, PartialEq, Debug)]
enum JobPhase {
    NotSubmitted,
    Queued,
    Running,
    Finished,
}

/// Per-job tracking: the spec-derived contract plus reconstructed state.
struct JobTrack {
    class: JobClass,
    submit_time: f64,
    min_nodes: u32,
    max_nodes: u32,
    /// `Some(n)` when the class pins the start size (rigid, evolving).
    fixed_start: Option<u32>,
    phase: JobPhase,
    alloc: BTreeSet<NodeId>,
    // Reconstructed accounting, cross-checked against the final report.
    start: Option<f64>,
    end: Option<(f64, Outcome)>,
    node_seconds: f64,
    last_alloc_change: f64,
    max_nodes_held: u32,
    reconfigs: u32,
}

impl JobTrack {
    fn accrue(&mut self, now: f64) {
        self.node_seconds += self.alloc.len() as f64 * (now - self.last_alloc_change);
        self.last_alloc_change = now;
    }
}

struct CheckerState {
    jobs: BTreeMap<JobId, JobTrack>,
    total_nodes: usize,
    owner: BTreeMap<NodeId, JobId>,
    down: BTreeSet<NodeId>,
    last_time: f64,
    /// Reconstructed utilization change points (mirrors the collector).
    util: Vec<(f64, u32)>,
    /// Open Gantt intervals and closed entries, reconstructed.
    gantt_open: HashMap<(JobId, NodeId), f64>,
    gantt: Vec<GanttEntry>,
    warnings_seen: usize,
    violations: Vec<InvariantViolation>,
}

impl CheckerState {
    fn violate(
        &mut self,
        rule: &'static str,
        time: f64,
        event: Option<&SimEvent>,
        message: String,
    ) {
        self.violations.push(InvariantViolation {
            time,
            rule,
            event: event
                .map(|e| serde_json::to_string(e).expect("event serialization cannot fail")),
            message,
        });
    }

    fn record_util(&mut self, t: f64) {
        let allocated = self.owner.len() as u32;
        if let Some(&(_, lv)) = self.util.last() {
            if lv == allocated {
                return;
            }
        }
        self.util.push((t, allocated));
    }

    fn valid_node(&mut self, node: NodeId, time: f64, event: &SimEvent) -> bool {
        if (node.0 as usize) < self.total_nodes {
            true
        } else {
            self.violate(
                "unknown-node",
                time,
                Some(event),
                format!("{node} is outside the {}-node platform", self.total_nodes),
            );
            false
        }
    }

    fn on_event(&mut self, event: &SimEvent) {
        let time = event.time();
        if !time.is_finite() || time < 0.0 {
            self.violate(
                "time-not-finite",
                time,
                Some(event),
                format!("event time {time} is not a finite non-negative number"),
            );
        }
        if time < self.last_time {
            self.violate(
                "time-not-monotone",
                time,
                Some(event),
                format!(
                    "event time {time} precedes previous event at {}",
                    self.last_time
                ),
            );
        }
        self.last_time = self.last_time.max(time);

        match event {
            SimEvent::JobSubmitted { time, job } => self.on_submitted(*time, *job, event),
            SimEvent::JobStarted { time, job, nodes } => self.on_started(*time, *job, nodes, event),
            SimEvent::JobReconfigured {
                time,
                job,
                added,
                removed,
                new_size,
            } => self.on_reconfigured(*time, *job, added, removed, *new_size, event),
            SimEvent::JobCompleted {
                time,
                job,
                outcome,
                released,
            } => self.on_completed(*time, *job, *outcome, released, event),
            SimEvent::NodeFailed { time, node } => {
                if self.valid_node(*node, *time, event) && !self.down.insert(*node) {
                    self.violate(
                        "node-double-failure",
                        *time,
                        Some(event),
                        format!("{node} failed while already down"),
                    );
                }
            }
            SimEvent::NodeRepaired { time, node } => {
                if self.valid_node(*node, *time, event) && !self.down.remove(node) {
                    self.violate(
                        "repair-of-healthy-node",
                        *time,
                        Some(event),
                        format!("{node} repaired but was not down"),
                    );
                }
            }
            SimEvent::DecisionRejected { .. } | SimEvent::Warning { .. } => {
                self.warnings_seen += 1;
            }
            // Purely informational: no state to reconcile.
            SimEvent::SchedulerInvoked { .. } => {}
        }
        if self.owner.len() > self.total_nodes {
            self.violate(
                "capacity-exceeded",
                time,
                Some(event),
                format!(
                    "{} nodes allocated on a {}-node platform",
                    self.owner.len(),
                    self.total_nodes
                ),
            );
        }
    }

    fn on_submitted(&mut self, time: f64, job: JobId, event: &SimEvent) {
        let Some((phase, expected)) = self.jobs.get(&job).map(|t| (t.phase, t.submit_time)) else {
            self.violate(
                "unknown-job",
                time,
                Some(event),
                format!("{job} submitted but is not in the workload"),
            );
            return;
        };
        if phase != JobPhase::NotSubmitted {
            self.violate(
                "illegal-transition",
                time,
                Some(event),
                format!("{job} submitted twice (was {phase:?})"),
            );
            return;
        }
        if time + EPS < expected {
            self.violate(
                "submit-before-time",
                time,
                Some(event),
                format!("{job} entered the queue at {time} before its submit time {expected}"),
            );
        }
        self.jobs.get_mut(&job).expect("checked above").phase = JobPhase::Queued;
    }

    fn on_started(&mut self, time: f64, job: JobId, nodes: &[NodeId], event: &SimEvent) {
        let Some((phase, class, min, max, fixed)) = self
            .jobs
            .get(&job)
            .map(|t| (t.phase, t.class, t.min_nodes, t.max_nodes, t.fixed_start))
        else {
            self.violate(
                "unknown-job",
                time,
                Some(event),
                format!("{job} started but is not in the workload"),
            );
            return;
        };
        if phase != JobPhase::Queued {
            self.violate(
                "illegal-transition",
                time,
                Some(event),
                format!("{job} started while {phase:?} (must be Queued)"),
            );
            return;
        }
        let n = nodes.len() as u32;
        if n < min || n > max {
            self.violate(
                "size-out-of-range",
                time,
                Some(event),
                format!("{job} started on {n} nodes outside [{min}, {max}]"),
            );
        }
        if let Some(f) = fixed {
            if n != f {
                self.violate(
                    "fixed-size-violated",
                    time,
                    Some(event),
                    format!("{class} {job} must start on exactly {f} nodes, got {n}"),
                );
            }
        }
        let mut unique = BTreeSet::new();
        for &node in nodes {
            if !self.valid_node(node, time, event) {
                continue;
            }
            if !unique.insert(node) {
                self.violate(
                    "duplicate-node-in-allocation",
                    time,
                    Some(event),
                    format!("{job} started with {node} listed twice"),
                );
                continue;
            }
            if let Some(holder) = self.owner.get(&node) {
                let holder = *holder;
                self.violate(
                    "node-double-assigned",
                    time,
                    Some(event),
                    format!("{job} started on {node}, already held by {holder}"),
                );
                continue;
            }
            if self.down.contains(&node) {
                self.violate(
                    "allocation-on-failed-node",
                    time,
                    Some(event),
                    format!("{job} started on failed {node}"),
                );
            }
            self.owner.insert(node, job);
            self.gantt_open.insert((job, node), time);
        }
        let track = self.jobs.get_mut(&job).expect("checked above");
        track.phase = JobPhase::Running;
        track.alloc = unique;
        track.start = Some(time);
        track.last_alloc_change = time;
        track.max_nodes_held = track.alloc.len() as u32;
        self.record_util(time);
    }

    fn on_reconfigured(
        &mut self,
        time: f64,
        job: JobId,
        added: &[NodeId],
        removed: &[NodeId],
        new_size: u32,
        event: &SimEvent,
    ) {
        let Some((phase, class, min, max)) = self
            .jobs
            .get(&job)
            .map(|t| (t.phase, t.class, t.min_nodes, t.max_nodes))
        else {
            self.violate(
                "unknown-job",
                time,
                Some(event),
                format!("{job} reconfigured but is not in the workload"),
            );
            return;
        };
        if phase != JobPhase::Running {
            self.violate(
                "illegal-transition",
                time,
                Some(event),
                format!("{job} reconfigured while {phase:?} (must be Running)"),
            );
            return;
        }
        if !class.is_elastic() {
            self.violate(
                "inelastic-reconfigured",
                time,
                Some(event),
                format!("{class} {job} must never be reconfigured"),
            );
        }
        if new_size < min || new_size > max {
            self.violate(
                "size-out-of-range",
                time,
                Some(event),
                format!("{job} reconfigured to {new_size} nodes outside [{min}, {max}]"),
            );
        }
        for &node in removed {
            if !self.valid_node(node, time, event) {
                continue;
            }
            if self.owner.get(&node) == Some(&job) {
                self.owner.remove(&node);
                if let Some(from) = self.gantt_open.remove(&(job, node)) {
                    self.gantt.push(GanttEntry {
                        job,
                        node,
                        from,
                        to: time,
                    });
                }
            } else {
                self.violate(
                    "release-of-unheld-node",
                    time,
                    Some(event),
                    format!("{job} shrank off {node} which it does not hold"),
                );
            }
        }
        for &node in added {
            if !self.valid_node(node, time, event) {
                continue;
            }
            if let Some(holder) = self.owner.get(&node) {
                let holder = *holder;
                self.violate(
                    "node-double-assigned",
                    time,
                    Some(event),
                    format!("{job} grew onto {node}, already held by {holder}"),
                );
                continue;
            }
            if self.down.contains(&node) {
                self.violate(
                    "allocation-on-failed-node",
                    time,
                    Some(event),
                    format!("{job} grew onto failed {node}"),
                );
            }
            self.owner.insert(node, job);
            self.gantt_open.insert((job, node), time);
        }
        let track = self.jobs.get_mut(&job).expect("checked above");
        track.accrue(time);
        for node in removed {
            track.alloc.remove(node);
        }
        track.alloc.extend(added.iter().copied());
        track.reconfigs += 1;
        track.max_nodes_held = track.max_nodes_held.max(track.alloc.len() as u32);
        if track.alloc.len() as u32 != new_size {
            let actual = track.alloc.len();
            self.violate(
                "reconfigure-size-mismatch",
                time,
                Some(event),
                format!("{job} claims new size {new_size} but holds {actual} nodes"),
            );
        }
        self.record_util(time);
    }

    fn on_completed(
        &mut self,
        time: f64,
        job: JobId,
        outcome: Outcome,
        released: &[NodeId],
        event: &SimEvent,
    ) {
        let Some((phase, held)) = self.jobs.get(&job).map(|t| (t.phase, t.alloc.clone())) else {
            self.violate(
                "unknown-job",
                time,
                Some(event),
                format!("{job} completed but is not in the workload"),
            );
            return;
        };
        match phase {
            JobPhase::Running => {
                let released_set: BTreeSet<NodeId> = released.iter().copied().collect();
                if released_set != held {
                    self.violate(
                        "release-mismatch",
                        time,
                        Some(event),
                        format!("{job} released {released_set:?} but holds {held:?}"),
                    );
                }
            }
            // Queued jobs can be killed; NotSubmitted ones can be
            // cancelled by a failed dependency before they ever queue.
            JobPhase::Queued | JobPhase::NotSubmitted => {
                // A job killed before starting holds nothing.
                if !released.is_empty() {
                    self.violate(
                        "release-mismatch",
                        time,
                        Some(event),
                        format!("{job} never started but released {released:?}"),
                    );
                }
                if outcome == Outcome::Completed {
                    self.violate(
                        "completed-without-running",
                        time,
                        Some(event),
                        format!("{job} reported Completed but never started"),
                    );
                }
            }
            phase => {
                self.violate(
                    "illegal-transition",
                    time,
                    Some(event),
                    format!("{job} completed while {phase:?}"),
                );
                return;
            }
        }
        for &node in released {
            if self.owner.get(&node) == Some(&job) {
                self.owner.remove(&node);
            }
            if let Some(from) = self.gantt_open.remove(&(job, node)) {
                self.gantt.push(GanttEntry {
                    job,
                    node,
                    from,
                    to: time,
                });
            }
        }
        let track = self.jobs.get_mut(&job).expect("checked above");
        track.accrue(time);
        track.alloc.clear();
        track.phase = JobPhase::Finished;
        track.end = Some((time, outcome));
        self.record_util(time);
    }

    /// Report-level cross-checks, run after the event stream ended.
    fn check_report(&mut self, report: &Report) {
        let t = self.last_time;
        if report.total_nodes != self.total_nodes {
            self.violate(
                "report-mismatch",
                t,
                None,
                format!(
                    "report says {} nodes, checker was built for {}",
                    report.total_nodes, self.total_nodes
                ),
            );
        }
        if report.jobs.len() != self.jobs.len() {
            self.violate(
                "report-mismatch",
                t,
                None,
                format!(
                    "report has {} job records, workload has {} jobs",
                    report.jobs.len(),
                    self.jobs.len()
                ),
            );
        }
        let mut max_end = 0.0f64;
        for rec in &report.jobs {
            let Some(track) = self.jobs.get(&rec.id) else {
                self.violations.push(InvariantViolation {
                    time: t,
                    rule: "report-mismatch",
                    event: None,
                    message: format!("report records unknown {}", rec.id),
                });
                continue;
            };
            let mut local = Vec::new();
            if rec.start != track.start {
                local.push(format!(
                    "start {:?} but events say {:?}",
                    rec.start, track.start
                ));
            }
            match (rec.end, track.end) {
                (Some(end), Some((ev_end, ev_outcome))) => {
                    if end != ev_end {
                        local.push(format!("end {end} but events say {ev_end}"));
                    }
                    if rec.outcome != ev_outcome {
                        local.push(format!(
                            "outcome {:?} but events say {ev_outcome:?}",
                            rec.outcome
                        ));
                    }
                    max_end = max_end.max(end);
                    let scale = track.node_seconds.abs().max(1.0);
                    if (rec.node_seconds - track.node_seconds).abs() > EPS * scale {
                        local.push(format!(
                            "node_seconds {} but events integrate to {}",
                            rec.node_seconds, track.node_seconds
                        ));
                    }
                    if rec.max_nodes_held != track.max_nodes_held {
                        local.push(format!(
                            "max_nodes_held {} but events say {}",
                            rec.max_nodes_held, track.max_nodes_held
                        ));
                    }
                    if rec.reconfigs != track.reconfigs {
                        local.push(format!(
                            "{} reconfigs but events show {}",
                            rec.reconfigs, track.reconfigs
                        ));
                    }
                }
                (Some(end), None) => {
                    local.push(format!("end {end} but no completion event was seen"));
                }
                (None, Some((ev_end, _))) => {
                    local.push(format!("no end but a completion event at {ev_end}"));
                }
                (None, None) => {}
            }
            for msg in local {
                self.violations.push(InvariantViolation {
                    time: t,
                    rule: "report-mismatch",
                    event: None,
                    message: format!("{}: {msg}", rec.id),
                });
            }
        }
        let makespan = report.summary().makespan;
        if (makespan - max_end).abs() > EPS * max_end.max(1.0) {
            self.violate(
                "report-mismatch",
                t,
                None,
                format!("makespan {makespan} but latest completion event is {max_end}"),
            );
        }
        // The utilization series must match the change points the events
        // imply (the engine's collector records an initial (0, 0) point).
        let mut expected = vec![(0.0, 0u32)];
        for &(pt, pv) in &self.util {
            if expected.last().map(|&(_, lv)| lv) != Some(pv) {
                expected.push((pt, pv));
            }
        }
        if report.utilization.points != expected {
            self.violate(
                "report-mismatch",
                t,
                None,
                format!(
                    "utilization series {:?} but events imply {:?}",
                    report.utilization.points, expected
                ),
            );
        }
        // Gantt spans: only checked when the report recorded them. Open
        // intervals of an aborted run close at the report horizon.
        if !report.gantt.is_empty() || self.jobs.values().all(|j| j.start.is_none()) {
            let mut expected = self.gantt.clone();
            let horizon = report
                .jobs
                .iter()
                .filter_map(|r| r.end)
                .fold(0.0f64, f64::max);
            for (&(job, node), &from) in &self.gantt_open {
                expected.push(GanttEntry {
                    job,
                    node,
                    from,
                    to: horizon.max(from),
                });
            }
            expected.sort_by(|a, b| {
                a.from
                    .total_cmp(&b.from)
                    .then(a.job.cmp(&b.job))
                    .then(a.node.cmp(&b.node))
            });
            if report.gantt != expected {
                self.violate(
                    "report-mismatch",
                    t,
                    None,
                    format!(
                        "gantt trace has {} spans but events imply {}",
                        report.gantt.len(),
                        expected.len()
                    ),
                );
            }
        }
        if report.warnings.len() != self.warnings_seen {
            self.violate(
                "report-mismatch",
                t,
                None,
                format!(
                    "report carries {} warnings but {} warning events were seen",
                    report.warnings.len(),
                    self.warnings_seen
                ),
            );
        }
    }
}

/// Checks simulation invariants as the run unfolds; see the module docs.
///
/// The checker is cloneable — clones share state — so one handle can be
/// attached to a [`crate::Simulation`] via [`InvariantChecker::observer`]
/// while the caller keeps another to read violations after the run:
///
/// ```
/// use elastisim::{InvariantChecker, SimConfig, Simulation};
/// use elastisim_platform::{NodeSpec, PlatformSpec};
/// use elastisim_sched::FcfsScheduler;
/// use elastisim_workload::WorkloadConfig;
///
/// let platform = PlatformSpec::homogeneous("p", 8, NodeSpec::default());
/// let jobs = WorkloadConfig::new(4).with_platform_nodes(8).generate();
/// let checker = InvariantChecker::new(&jobs, 8);
/// let mut sim = Simulation::new(
///     &platform, jobs, Box::new(FcfsScheduler::new()), SimConfig::default(),
/// ).unwrap();
/// sim.add_observer(checker.observer());
/// let report = sim.run();
/// checker.assert_clean(&report);
/// ```
#[derive(Clone)]
pub struct InvariantChecker {
    state: Arc<Mutex<CheckerState>>,
}

/// The [`Observer`] half of a checker handle.
struct CheckerObserver {
    state: Arc<Mutex<CheckerState>>,
}

impl Observer for CheckerObserver {
    fn on_event(&mut self, event: &SimEvent) {
        lock(&self.state).on_event(event);
    }
}

/// Locks checker state, forgiving poisoning: a panicking run inside the
/// campaign executor must not wedge a checker handle the caller still
/// holds to read violations from.
fn lock(state: &Mutex<CheckerState>) -> MutexGuard<'_, CheckerState> {
    state
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl InvariantChecker {
    /// A checker for a run of `jobs` on a `total_nodes`-node platform.
    pub fn new(jobs: &[JobSpec], total_nodes: usize) -> Self {
        let tracks = jobs
            .iter()
            .map(|spec| {
                (
                    spec.id,
                    JobTrack {
                        class: spec.class,
                        submit_time: spec.submit_time,
                        min_nodes: spec.min_nodes,
                        max_nodes: spec.max_nodes,
                        fixed_start: spec.user_fixed_start(),
                        phase: JobPhase::NotSubmitted,
                        alloc: BTreeSet::new(),
                        start: None,
                        end: None,
                        node_seconds: 0.0,
                        last_alloc_change: 0.0,
                        max_nodes_held: 0,
                        reconfigs: 0,
                    },
                )
            })
            .collect();
        InvariantChecker {
            state: Arc::new(Mutex::new(CheckerState {
                jobs: tracks,
                total_nodes,
                owner: BTreeMap::new(),
                down: BTreeSet::new(),
                last_time: 0.0,
                util: Vec::new(),
                gantt_open: HashMap::new(),
                gantt: Vec::new(),
                warnings_seen: 0,
                violations: Vec::new(),
            })),
        }
    }

    /// An [`Observer`] handle sharing this checker's state, suitable for
    /// [`crate::Simulation::add_observer`].
    pub fn observer(&self) -> Box<dyn Observer> {
        Box::new(CheckerObserver {
            state: self.state.clone(),
        })
    }

    /// Feeds one event directly (for replaying recorded streams).
    pub fn observe(&self, event: &SimEvent) {
        lock(&self.state).on_event(event);
    }

    /// The violations recorded so far.
    pub fn violations(&self) -> Vec<InvariantViolation> {
        lock(&self.state).violations.clone()
    }

    /// Cross-checks the final report against the event stream and returns
    /// *all* violations (stream-level and report-level).
    pub fn check_report(&self, report: &Report) -> Vec<InvariantViolation> {
        let mut state = lock(&self.state);
        state.check_report(report);
        state.violations.clone()
    }

    /// Panics with every violation listed unless the run was clean.
    /// Intended for tests.
    pub fn assert_clean(&self, report: &Report) {
        let violations = self.check_report(report);
        if !violations.is_empty() {
            let lines: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
            panic!(
                "{} invariant violation(s):\n{}",
                violations.len(),
                lines.join("\n")
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastisim_workload::{ApplicationModel, Phase};

    fn rigid(id: u64, submit: f64, nodes: u32) -> JobSpec {
        JobSpec::rigid(
            id,
            submit,
            nodes,
            ApplicationModel::new(vec![Phase::once("p", vec![])]),
        )
    }

    fn malleable(id: u64, submit: f64, min: u32, max: u32) -> JobSpec {
        JobSpec::malleable(
            id,
            submit,
            min,
            max,
            ApplicationModel::new(vec![Phase::once("p", vec![])]),
        )
    }

    fn submitted(time: f64, job: u64) -> SimEvent {
        SimEvent::JobSubmitted {
            time,
            job: JobId(job),
        }
    }

    fn started(time: f64, job: u64, nodes: &[u32]) -> SimEvent {
        SimEvent::JobStarted {
            time,
            job: JobId(job),
            nodes: nodes.iter().map(|&n| NodeId(n)).collect(),
        }
    }

    fn completed(time: f64, job: u64, nodes: &[u32]) -> SimEvent {
        SimEvent::JobCompleted {
            time,
            job: JobId(job),
            outcome: Outcome::Completed,
            released: nodes.iter().map(|&n| NodeId(n)).collect(),
        }
    }

    fn rules(checker: &InvariantChecker) -> Vec<&'static str> {
        checker.violations().iter().map(|v| v.rule).collect()
    }

    #[test]
    fn clean_stream_has_no_violations() {
        let checker = InvariantChecker::new(&[rigid(1, 0.0, 2)], 4);
        checker.observe(&submitted(0.0, 1));
        checker.observe(&started(10.0, 1, &[0, 1]));
        checker.observe(&completed(50.0, 1, &[0, 1]));
        assert!(
            checker.violations().is_empty(),
            "{:?}",
            checker.violations()
        );
    }

    #[test]
    fn double_assignment_is_caught_with_the_offending_event() {
        let checker = InvariantChecker::new(&[rigid(1, 0.0, 1), rigid(2, 0.0, 1)], 4);
        checker.observe(&submitted(0.0, 1));
        checker.observe(&submitted(0.0, 2));
        checker.observe(&started(1.0, 1, &[0]));
        checker.observe(&started(2.0, 2, &[0]));
        let violations = checker.violations();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].rule, "node-double-assigned");
        let event = violations[0].event.as_deref().unwrap();
        assert!(event.contains(r#""event":"job_started""#), "{event}");
    }

    #[test]
    fn time_must_be_monotone() {
        let checker = InvariantChecker::new(&[rigid(1, 0.0, 1)], 4);
        checker.observe(&submitted(5.0, 1));
        checker.observe(&started(3.0, 1, &[0]));
        assert_eq!(rules(&checker), vec!["time-not-monotone"]);
    }

    #[test]
    fn rigid_job_must_start_at_its_size_and_never_resize() {
        let checker = InvariantChecker::new(&[rigid(1, 0.0, 2)], 8);
        checker.observe(&submitted(0.0, 1));
        checker.observe(&started(1.0, 1, &[0, 1, 2]));
        assert!(rules(&checker).contains(&"size-out-of-range"));
        assert!(rules(&checker).contains(&"fixed-size-violated"));

        let checker = InvariantChecker::new(&[rigid(1, 0.0, 2)], 8);
        checker.observe(&submitted(0.0, 1));
        checker.observe(&started(1.0, 1, &[0, 1]));
        checker.observe(&SimEvent::JobReconfigured {
            time: 2.0,
            job: JobId(1),
            added: vec![NodeId(2)],
            removed: vec![],
            new_size: 3,
        });
        assert!(rules(&checker).contains(&"inelastic-reconfigured"));
    }

    #[test]
    fn malleable_resizes_legally_but_not_outside_range() {
        let checker = InvariantChecker::new(&[malleable(1, 0.0, 1, 3)], 8);
        checker.observe(&submitted(0.0, 1));
        checker.observe(&started(1.0, 1, &[0, 1]));
        checker.observe(&SimEvent::JobReconfigured {
            time: 2.0,
            job: JobId(1),
            added: vec![NodeId(2)],
            removed: vec![NodeId(0)],
            new_size: 2,
        });
        checker.observe(&completed(9.0, 1, &[1, 2]));
        assert!(
            checker.violations().is_empty(),
            "{:?}",
            checker.violations()
        );

        let checker = InvariantChecker::new(&[malleable(1, 0.0, 1, 2)], 8);
        checker.observe(&submitted(0.0, 1));
        checker.observe(&started(1.0, 1, &[0, 1]));
        checker.observe(&SimEvent::JobReconfigured {
            time: 2.0,
            job: JobId(1),
            added: vec![NodeId(2)],
            removed: vec![],
            new_size: 3,
        });
        assert!(rules(&checker).contains(&"size-out-of-range"));
    }

    #[test]
    fn state_machine_rejects_out_of_order_events() {
        let checker = InvariantChecker::new(&[rigid(1, 0.0, 1)], 4);
        checker.observe(&started(1.0, 1, &[0])); // never submitted
        assert_eq!(rules(&checker), vec!["illegal-transition"]);

        let checker = InvariantChecker::new(&[rigid(1, 0.0, 1)], 4);
        checker.observe(&submitted(0.0, 1));
        checker.observe(&started(1.0, 1, &[0]));
        checker.observe(&completed(2.0, 1, &[0]));
        checker.observe(&completed(3.0, 1, &[0]));
        assert_eq!(rules(&checker), vec!["illegal-transition"]);
    }

    #[test]
    fn release_must_match_holdings() {
        let checker = InvariantChecker::new(&[rigid(1, 0.0, 2)], 4);
        checker.observe(&submitted(0.0, 1));
        checker.observe(&started(1.0, 1, &[0, 1]));
        checker.observe(&completed(2.0, 1, &[0])); // keeps node 1
        assert!(rules(&checker).contains(&"release-mismatch"));
    }

    #[test]
    fn failure_and_repair_tracking() {
        let checker = InvariantChecker::new(&[rigid(1, 0.0, 1)], 4);
        checker.observe(&SimEvent::NodeFailed {
            time: 1.0,
            node: NodeId(0),
        });
        checker.observe(&submitted(1.0, 1));
        checker.observe(&started(2.0, 1, &[0]));
        assert!(rules(&checker).contains(&"allocation-on-failed-node"));

        let checker = InvariantChecker::new(&[], 4);
        checker.observe(&SimEvent::NodeRepaired {
            time: 1.0,
            node: NodeId(2),
        });
        assert_eq!(rules(&checker), vec!["repair-of-healthy-node"]);
    }

    #[test]
    fn report_cross_check_catches_tampering() {
        let checker = InvariantChecker::new(&[rigid(1, 0.0, 2)], 4);
        checker.observe(&submitted(0.0, 1));
        checker.observe(&started(10.0, 1, &[0, 1]));
        checker.observe(&completed(50.0, 1, &[0, 1]));
        let mut report = Report {
            total_nodes: 4,
            ..Report::default()
        };
        report.jobs.push(crate::stats::JobRecord {
            id: JobId(1),
            class: JobClass::Rigid,
            submit: 0.0,
            start: Some(10.0),
            end: Some(50.0),
            outcome: Outcome::Completed,
            node_seconds: 80.0,
            max_nodes_held: 2,
            reconfigs: 0,
            evolving_latencies: vec![],
        });
        report.utilization.points = vec![(0.0, 0), (10.0, 2), (50.0, 0)];
        // A faithful report passes (gantt disabled ⇒ span check skipped).
        assert!(checker.check_report(&report).is_empty());
        // Tampering with the integral is caught.
        report.jobs[0].node_seconds = 99.0;
        let violations = checker.check_report(&report);
        assert!(violations
            .iter()
            .any(|v| v.rule == "report-mismatch" && v.message.contains("node_seconds")));
    }
}
