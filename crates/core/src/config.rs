//! Simulation configuration.

/// Cost model for applying a malleable/evolving reconfiguration.
///
/// ElastiSim lets the platform attach a cost to resizing: the job pauses
/// while state is redistributed. The experiments ablate this knob.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ReconfigCost {
    /// Resizing is instantaneous.
    Free,
    /// A fixed pause, seconds.
    Fixed(f64),
    /// Every node of the *union* of old and new allocation moves this many
    /// bytes through its NIC and the backbone (data redistribution).
    DataVolume {
        /// Bytes per participating node.
        bytes_per_node: f64,
    },
}

/// Node-failure injection: nodes fail at exponentially distributed times
/// (cluster-wide rate = nodes / MTBF), killing whatever runs on them, and
/// return to service after `repair_time`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FailureModel {
    /// Mean time between failures of a *single node*, seconds.
    pub node_mtbf: f64,
    /// Downtime per failure, seconds.
    pub repair_time: f64,
    /// Seed of the failure process (independent of workload seeds).
    pub seed: u64,
}

impl FailureModel {
    /// A failure model with the given per-node MTBF and one-hour repairs.
    pub fn with_mtbf(node_mtbf: f64) -> Self {
        assert!(node_mtbf > 0.0);
        FailureModel {
            node_mtbf,
            repair_time: 3600.0,
            seed: 0x5EED,
        }
    }
}

/// Knobs of one simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Period of the scheduler's timer-driven invocation, seconds.
    pub scheduling_interval: f64,
    /// Invoke the scheduler when a job is submitted.
    pub invoke_on_submit: bool,
    /// Invoke the scheduler when a job completes.
    pub invoke_on_completion: bool,
    /// Invoke the scheduler when an evolving job requests resources.
    pub invoke_on_evolving_request: bool,
    /// Invoke the scheduler at every job scheduling point (expensive;
    /// mirrors ElastiSim's optional fine-grained invocation).
    pub invoke_on_scheduling_point: bool,
    /// Invoke the scheduler when an applied reconfiguration released
    /// nodes, so freed capacity is handed out without waiting for the next
    /// periodic tick (the "resources released" invocation point).
    pub invoke_on_release: bool,
    /// Cost of applying a reconfiguration.
    pub reconfig_cost: ReconfigCost,
    /// Record per-job node assignment intervals (Gantt trace). Costs
    /// memory on large runs.
    pub record_gantt: bool,
    /// Optional node-failure injection.
    pub failures: Option<FailureModel>,
    /// Emit a progress heartbeat to stderr every this many *wall-clock*
    /// seconds (sim-time, %jobs done, events/sec). `None` = silent.
    /// Output goes to stderr only and never affects simulation results.
    pub progress: Option<f64>,
    /// Number of threads used for parallel flow re-solves (the component
    /// partition of one solve is fanned out to a work-stealing pool).
    /// `None` = serial. Results are bit-identical at any thread count, so
    /// this knob — like `progress` — never affects simulation output.
    pub solver_threads: Option<usize>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            scheduling_interval: 60.0,
            invoke_on_submit: true,
            invoke_on_completion: true,
            invoke_on_evolving_request: true,
            invoke_on_scheduling_point: false,
            invoke_on_release: true,
            reconfig_cost: ReconfigCost::Fixed(5.0),
            record_gantt: true,
            failures: None,
            progress: None,
            solver_threads: None,
        }
    }
}

impl SimConfig {
    /// Sets the scheduling interval.
    pub fn with_interval(mut self, seconds: f64) -> Self {
        assert!(seconds > 0.0);
        self.scheduling_interval = seconds;
        self
    }

    /// Sets the reconfiguration cost model.
    pub fn with_reconfig_cost(mut self, cost: ReconfigCost) -> Self {
        self.reconfig_cost = cost;
        self
    }

    /// Disables the Gantt trace (large sweeps).
    pub fn without_gantt(mut self) -> Self {
        self.record_gantt = false;
        self
    }

    /// Enables node-failure injection.
    pub fn with_failures(mut self, failures: FailureModel) -> Self {
        self.failures = Some(failures);
        self
    }

    /// Enables the stderr progress heartbeat, every `seconds` of wall
    /// clock.
    pub fn with_progress(mut self, seconds: f64) -> Self {
        assert!(seconds > 0.0);
        self.progress = Some(seconds);
        self
    }

    /// Runs flow re-solves on `threads` work-stealing solver threads
    /// (result-neutral: reports are bit-identical at any thread count).
    pub fn with_solver_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1);
        self.solver_threads = Some(threads);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = SimConfig::default();
        assert!(c.scheduling_interval > 0.0);
        assert!(c.invoke_on_submit);
    }

    #[test]
    fn builders() {
        let c = SimConfig::default()
            .with_interval(10.0)
            .with_reconfig_cost(ReconfigCost::Free)
            .without_gantt();
        assert_eq!(c.scheduling_interval, 10.0);
        assert_eq!(c.reconfig_cost, ReconfigCost::Free);
        assert!(!c.record_gantt);
    }

    #[test]
    #[should_panic]
    fn zero_interval_rejected() {
        SimConfig::default().with_interval(0.0);
    }

    #[test]
    fn solver_threads_builder() {
        assert_eq!(SimConfig::default().solver_threads, None);
        let c = SimConfig::default().with_solver_threads(4);
        assert_eq!(c.solver_threads, Some(4));
    }

    #[test]
    #[should_panic]
    fn zero_solver_threads_rejected() {
        SimConfig::default().with_solver_threads(0);
    }
}
