//! The batch-system simulation engine.
//!
//! [`Simulation`] owns the DES kernel, the instantiated platform, the job
//! table, and the [`SchedulerDriver`], and drives jobs through their
//! lifecycle: submit → start → phases/tasks (with scheduling points where
//! reconfigurations are applied) → completion. Every externally meaningful
//! state change is emitted as a [`SimEvent`] on the observer bus, from
//! which the report statistics (utilization, Gantt, warnings) are
//! collected. See the crate docs for the full contract.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use elastisim_des::{ActivitySpec, Simulator, Time};
use elastisim_platform::{NodeId, Platform, PlatformSpec};
use elastisim_sched::{
    Decision, Invocation, JobRunInfo, JobState, JobView, Scheduler, SchedulerTransport, SystemView,
};
use elastisim_telemetry::Telemetry;
use elastisim_workload::{validate_workload, JobClass, JobId, JobSpec, WorkloadError};

use crate::config::{ReconfigCost, SimConfig};
use crate::decisions::{deps_satisfied, DecisionCtx, KillTarget};
use crate::driver::{SchedulerDriver, SimError};
use crate::exec::{has_latency, task_activities, task_context};
use crate::lifecycle::{JobRuntime, RunState, Stage, Step};
use crate::observe::{EventBus, Observer, SimEvent};
use crate::stats::{JobRecord, Outcome, Report, WarningKind};

/// Event payloads circulating through the DES kernel.
#[derive(Clone, Copy, Debug)]
enum Ev {
    /// A job reaches its submit time.
    Submit(JobId),
    /// One rank activity of a job's current task (or reconfiguration cost)
    /// finished. The epoch guards against stale deliveries.
    Unit { job: JobId, epoch: u64 },
    /// A job's walltime limit expired.
    Walltime { job: JobId, epoch: u64 },
    /// Periodic scheduler invocation.
    Tick,
    /// A node fails (victim chosen when the event fires).
    NodeFail,
    /// A failed node returns to service.
    NodeRepair(NodeId),
}

/// A complete simulation: platform + workload + scheduler driver.
pub struct Simulation {
    sim: Simulator<Ev>,
    platform: Platform,
    cfg: SimConfig,
    driver: SchedulerDriver,
    bus: EventBus,
    jobs: BTreeMap<JobId, JobRuntime>,
    /// Nodes not allocated and not reserved.
    free: BTreeSet<NodeId>,
    /// Nodes reserved for pending reconfiguration expansions.
    reserved: BTreeSet<NodeId>,
    /// Nodes currently failed (out of service).
    down: BTreeSet<NodeId>,
    /// Jobs whose `JobSubmitted` event has been emitted. Kept separate
    /// from the DES `Submit` events so same-timestamp submissions are all
    /// announced before any scheduler invocation can start them.
    announced: BTreeSet<JobId>,
    /// State of the failure process's deterministic RNG (SplitMix64).
    failure_rng: u64,
    outcomes: HashMap<JobId, (Outcome, f64)>,
    /// A driver failure that must abort the run.
    fatal: Option<SimError>,
    tick_pending: bool,
    idle_ticks: u32,
    in_invoke: bool,
    deferred_invokes: Vec<Invocation>,
    /// Simulator-internals metrics (disabled by default: a no-op handle).
    /// Never influences simulation results.
    telemetry: Telemetry,
}

impl Simulation {
    /// Builds a simulation around an in-process scheduling algorithm.
    /// Validates the workload against the platform.
    pub fn new(
        platform_spec: &PlatformSpec,
        workload: Vec<JobSpec>,
        scheduler: Box<dyn Scheduler>,
        cfg: SimConfig,
    ) -> Result<Self, WorkloadError> {
        Self::with_driver(
            platform_spec,
            workload,
            SchedulerDriver::in_process(scheduler),
            cfg,
        )
    }

    /// Builds a simulation around any scheduler transport — e.g. an
    /// [`elastisim_sched::ExternalProcess`] speaking the wire protocol.
    /// Use [`Simulation::try_run`] with fallible transports.
    pub fn with_transport(
        platform_spec: &PlatformSpec,
        workload: Vec<JobSpec>,
        transport: Box<dyn SchedulerTransport>,
        cfg: SimConfig,
    ) -> Result<Self, WorkloadError> {
        Self::with_driver(
            platform_spec,
            workload,
            SchedulerDriver::new(transport),
            cfg,
        )
    }

    /// Builds a simulation around an already-constructed driver.
    pub fn with_driver(
        platform_spec: &PlatformSpec,
        workload: Vec<JobSpec>,
        driver: SchedulerDriver,
        cfg: SimConfig,
    ) -> Result<Self, WorkloadError> {
        validate_workload(&workload, platform_spec.num_nodes())?;
        let mut sim = Simulator::new();
        if let Some(threads) = cfg.solver_threads {
            sim.set_solver_threads(threads.max(1));
        }
        let platform = Platform::instantiate(platform_spec, &mut sim);
        let mut jobs = BTreeMap::new();
        for spec in workload {
            sim.schedule_at(Time::from_secs(spec.submit_time), Ev::Submit(spec.id));
            jobs.insert(spec.id, JobRuntime::new(spec));
        }
        let free: BTreeSet<NodeId> = platform.node_ids().collect();
        let failure_rng = cfg.failures.map(|f| f.seed).unwrap_or(0);
        let bus = EventBus::new(cfg.record_gantt);
        Ok(Simulation {
            sim,
            platform,
            cfg,
            driver,
            bus,
            jobs,
            free,
            reserved: BTreeSet::new(),
            down: BTreeSet::new(),
            announced: BTreeSet::new(),
            failure_rng,
            outcomes: HashMap::new(),
            fatal: None,
            tick_pending: false,
            idle_ticks: 0,
            in_invoke: false,
            deferred_invokes: Vec::new(),
            telemetry: Telemetry::disabled(),
        })
    }

    /// Attaches an observer that receives every [`SimEvent`] of the run,
    /// e.g. a [`crate::EventTraceWriter`]. Call before running.
    pub fn add_observer(&mut self, observer: Box<dyn Observer>) {
        self.bus.add_observer(observer);
    }

    /// Attaches a telemetry handle, shared with the DES kernel and the
    /// scheduler driver, so the run records simulator-internals metrics
    /// (scheduler latency, flow re-solves, queue depth, throughput).
    /// Telemetry never changes simulation results: a telemetry-enabled run
    /// produces a byte-identical [`Report`] to a bare one. Call before
    /// running.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.sim.set_telemetry(telemetry.clone());
        self.driver.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// Overrides the parallel flow-solver policy (thread count plus the
    /// partitioning thresholds) of the underlying engine. The config knob
    /// [`SimConfig::solver_threads`] covers normal use; this hook exists
    /// so tests can force partitioning on small scenarios. Any setting
    /// yields bit-identical reports.
    pub fn set_parallelism(&mut self, par: elastisim_des::ParPolicy) {
        self.sim.set_parallelism(par);
    }

    /// Runs to completion and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if the scheduler transport fails (only possible with an
    /// external scheduler); use [`Simulation::try_run`] for those.
    pub fn run(self) -> Report {
        self.try_run()
            .unwrap_or_else(|e| panic!("simulation failed: {e}"))
    }

    /// Runs to completion, or stops at the first scheduler-transport
    /// failure with a structured error.
    pub fn try_run(mut self) -> Result<Report, SimError> {
        self.ensure_tick(0.0);
        self.schedule_next_failure(0.0);
        let mut last_now = 0.0;
        let run_start = std::time::Instant::now();
        let mut heartbeat = self.cfg.progress.map(Heartbeat::new);
        while let Some((t, ev)) = self.sim.step() {
            if self.fatal.is_some() {
                break;
            }
            let now = t.as_secs();
            last_now = now;
            if let Some(hb) = &mut heartbeat {
                hb.maybe_beat(now, &self.jobs, &self.outcomes, self.sim.events_delivered());
            }
            match ev {
                Ev::Submit(id) => {
                    self.announce_submissions(now);
                    if self.cfg.invoke_on_submit {
                        self.invoke_scheduler(now, Invocation::JobSubmitted(id));
                    }
                    self.ensure_tick(now);
                }
                Ev::Unit { job, epoch } => {
                    if self.jobs.get(&job).is_some_and(|j| j.epoch == epoch) {
                        self.handle_unit(job, now);
                    }
                }
                Ev::Walltime { job, epoch } => {
                    let live = self
                        .jobs
                        .get(&job)
                        .is_some_and(|j| j.epoch == epoch && j.state != RunState::Done);
                    if live {
                        self.terminate(job, now, Outcome::WalltimeExceeded);
                        if self.cfg.invoke_on_completion {
                            self.invoke_scheduler(now, Invocation::JobCompleted(job));
                        }
                    }
                }
                Ev::NodeFail => {
                    self.handle_node_failure(now);
                }
                Ev::NodeRepair(node) => {
                    self.down.remove(&node);
                    self.free.insert(node);
                    self.bus.emit(SimEvent::NodeRepaired { time: now, node });
                    // Freed capacity: let the scheduler use it right away.
                    self.invoke_scheduler(now, Invocation::Periodic);
                }
                Ev::Tick => {
                    self.tick_pending = false;
                    let applied = self.invoke_scheduler(now, Invocation::Periodic);
                    let anything_running = self
                        .jobs
                        .values()
                        .any(|j| matches!(j.state, RunState::Running | RunState::Reconfiguring));
                    if applied == 0 && !anything_running && self.all_submitted(now) {
                        // Nothing running, nothing started: the scheduler is
                        // not going to make progress by being asked again.
                        self.idle_ticks += 1;
                    } else {
                        self.idle_ticks = 0;
                    }
                    if self.idle_ticks < 2 {
                        self.ensure_tick(now);
                    } else if self.jobs.values().any(|j| j.state == RunState::Pending) {
                        self.bus.emit(SimEvent::Warning {
                            time: now,
                            job: None,
                            kind: WarningKind::NoProgress,
                            message: format!(
                                "scheduler made no progress at t={now}; \
                                 ending with pending jobs unstarted"
                            ),
                        });
                    }
                }
            }
        }
        if let Some(e) = self.fatal.take() {
            self.driver.shutdown();
            return Err(e);
        }
        let stalled = self.sim.stalled_activities();
        if !stalled.is_empty() {
            self.bus.emit(SimEvent::Warning {
                time: last_now,
                job: None,
                kind: WarningKind::StalledActivities,
                message: format!("{} activities stalled at end of simulation", stalled.len()),
            });
        }
        self.sim.flush_telemetry();
        if self.telemetry.is_enabled() {
            let wall = run_start.elapsed().as_secs_f64();
            let events = self.sim.events_delivered();
            self.telemetry.gauge_set("engine.wall_seconds", wall);
            self.telemetry.gauge_set("engine.sim_seconds", last_now);
            self.telemetry.gauge_set(
                "engine.events_per_sec",
                if wall > 0.0 {
                    events as f64 / wall
                } else {
                    0.0
                },
            );
            self.telemetry.counter_add("des.events_delivered", events);
            self.telemetry
                .counter_add("des.queue.compactions", self.sim.queue_compactions());
            self.telemetry.gauge_set(
                "des.queue.live_entries",
                self.sim.queue_live_entries() as f64,
            );
            self.telemetry.gauge_set(
                "des.queue.cancelled_entries",
                self.sim.queue_cancelled_entries() as f64,
            );
            self.telemetry
                .counter_add("flow.recomputes", self.sim.recompute_count());
            self.telemetry
                .counter_add("flow.mode_switches", self.sim.flow_mode_switches());
        }
        self.build_report()
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn all_submitted(&self, now: f64) -> bool {
        self.jobs.values().all(|j| j.spec.submit_time <= now)
    }

    /// Emits `JobSubmitted` for every job whose submit time has been
    /// reached but which has not been announced yet, in id order. The
    /// scheduler view exposes all due jobs at once, so without this a
    /// same-timestamp sibling could be started before its own submission
    /// event fired, making the observed stream non-causal.
    fn announce_submissions(&mut self, now: f64) {
        let due: Vec<JobId> = self
            .jobs
            .values()
            .filter(|rt| rt.spec.submit_time <= now && !self.announced.contains(&rt.spec.id))
            .map(|rt| rt.spec.id)
            .collect();
        for id in due {
            self.announced.insert(id);
            self.bus.emit(SimEvent::JobSubmitted { time: now, job: id });
        }
    }

    /// Cancels every pending job that (transitively) depends on a job that
    /// ended unsuccessfully — `afterok` semantics.
    fn cascade_dependency_failures(&mut self, now: f64) {
        self.announce_submissions(now);
        loop {
            let doomed: Vec<JobId> = self
                .jobs
                .values()
                .filter(|rt| rt.state == RunState::Pending)
                .filter(|rt| {
                    rt.spec.dependencies.iter().any(|dep| {
                        matches!(
                            self.outcomes.get(dep),
                            Some((o, _)) if *o != Outcome::Completed
                        )
                    })
                })
                .map(|rt| rt.spec.id)
                .collect();
            if doomed.is_empty() {
                return;
            }
            for id in doomed {
                let rt = self.jobs.get_mut(&id).expect("doomed job exists");
                rt.state = RunState::Done;
                rt.epoch += 1;
                self.outcomes.insert(id, (Outcome::Killed, now));
                self.bus.emit(SimEvent::Warning {
                    time: now,
                    job: Some(id),
                    kind: WarningKind::DependencyCancelled,
                    message: format!("{id}: cancelled, a dependency did not complete"),
                });
                self.bus.emit(SimEvent::JobCompleted {
                    time: now,
                    job: id,
                    outcome: Outcome::Killed,
                    released: Vec::new(),
                });
            }
        }
    }

    fn handle_unit(&mut self, id: JobId, now: f64) {
        let rt = self.jobs.get_mut(&id).expect("unit for unknown job");
        debug_assert!(rt.outstanding > 0, "unit underflow for {id}");
        rt.outstanding -= 1;
        if rt.outstanding > 0 {
            return;
        }
        rt.activities.clear();
        match rt.state {
            RunState::Reconfiguring => {
                rt.state = RunState::Running;
                self.continue_job(id, now);
            }
            RunState::Running => {
                if rt.stage == Stage::Latency {
                    rt.stage = Stage::Flow;
                    self.start_current_task(id, now, /*after_latency=*/ true);
                } else {
                    rt.units_done += 1;
                    rt.cursor.advance_after_task();
                    self.continue_job(id, now);
                }
            }
            RunState::Pending | RunState::Done => {
                // Stale unit after kill; epoch should have filtered it.
                debug_assert!(false, "unit for job in state {:?}", rt.state);
            }
        }
    }

    /// Advances a running job through its cursor until a task starts, a
    /// reconfiguration pause begins, or the job completes.
    fn continue_job(&mut self, id: JobId, now: f64) {
        loop {
            let rt = self.jobs.get_mut(&id).expect("continue for unknown job");
            if rt.state == RunState::Done {
                return;
            }
            let step = rt.cursor.step(&rt.spec.app);
            match step {
                Step::Task => {
                    self.start_current_task(id, now, false);
                    return;
                }
                Step::SchedulingPoint => {
                    if self.cfg.invoke_on_scheduling_point {
                        self.invoke_scheduler(now, Invocation::SchedulingPoint(id));
                    }
                    if self.apply_pending_reconfig(id, now) {
                        return; // paused for the reconfiguration cost
                    }
                }
                Step::PhaseEntry => {
                    self.on_phase_entry(id, now);
                    if self.apply_pending_reconfig(id, now) {
                        return;
                    }
                }
                Step::Done => {
                    self.terminate(id, now, Outcome::Completed);
                    if self.cfg.invoke_on_completion {
                        self.invoke_scheduler(now, Invocation::JobCompleted(id));
                    }
                    return;
                }
            }
        }
    }

    /// Fires the evolving request attached to the phase the cursor just
    /// entered, if any.
    fn on_phase_entry(&mut self, id: JobId, now: f64) {
        let rt = self.jobs.get_mut(&id).expect("phase entry for unknown job");
        if rt.spec.class != JobClass::Evolving {
            return;
        }
        let phase = &rt.spec.app.phases[rt.cursor.phase];
        let Some(want) = phase.evolving_request else {
            return;
        };
        if want as usize == rt.alloc.len() {
            return;
        }
        rt.evolving_desired = Some((want, now));
        if self.cfg.invoke_on_evolving_request {
            self.invoke_scheduler(now, Invocation::EvolvingRequest(id, want));
        }
    }

    /// Starts the task under the cursor. With `after_latency` the latency
    /// prologue already ran and the flows start directly.
    fn start_current_task(&mut self, id: JobId, now: f64, after_latency: bool) {
        let latency = self.platform.latency();
        let rt = self.jobs.get_mut(&id).expect("start task for unknown job");
        let phase = &rt.spec.app.phases[rt.cursor.phase];
        let task = &phase.tasks[rt.cursor.task];

        if !after_latency && latency > 0.0 && has_latency(&task.kind) {
            rt.stage = Stage::Latency;
            rt.outstanding = 1;
            let epoch = rt.epoch;
            let act = self.sim.start_activity(
                ActivitySpec::new(latency, []).with_bound(1.0),
                Ev::Unit { job: id, epoch },
            );
            self.jobs.get_mut(&id).unwrap().activities.push(act);
            return;
        }

        let ctx = task_context(rt.alloc.len(), rt.cursor.phase, rt.cursor.iter);
        let specs = match task_activities(&self.platform, &rt.alloc, &task.kind, &ctx) {
            Ok(specs) => specs,
            Err(e) => {
                let msg = format!("{id}: task `{}` failed: {e}", task.name);
                self.bus.emit(SimEvent::Warning {
                    time: now,
                    job: Some(id),
                    kind: WarningKind::TaskFailed,
                    message: msg,
                });
                self.terminate(id, now, Outcome::Killed);
                if self.cfg.invoke_on_completion {
                    self.invoke_scheduler(now, Invocation::JobCompleted(id));
                }
                return;
            }
        };
        let epoch = rt.epoch;
        rt.stage = Stage::Flow;
        rt.outstanding = specs.len();
        let mut acts = Vec::with_capacity(specs.len());
        for spec in specs {
            acts.push(self.sim.start_activity(spec, Ev::Unit { job: id, epoch }));
        }
        self.jobs.get_mut(&id).unwrap().activities = acts;
    }

    // ------------------------------------------------------------------
    // Failure injection
    // ------------------------------------------------------------------

    /// SplitMix64 step yielding a uniform value in `[0, 1)`.
    fn next_uniform(&mut self) -> f64 {
        self.failure_rng = self.failure_rng.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.failure_rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Schedules the next cluster failure (exponential inter-arrival with
    /// rate nodes/MTBF) while work remains.
    fn schedule_next_failure(&mut self, now: f64) {
        let Some(model) = self.cfg.failures else {
            return;
        };
        if !self.jobs.values().any(|j| j.state != RunState::Done) {
            return; // don't keep an idle simulation alive
        }
        let rate = self.platform.num_nodes() as f64 / model.node_mtbf;
        let u = self.next_uniform().max(f64::MIN_POSITIVE);
        let dt = -u.ln() / rate;
        self.sim
            .schedule_at(Time::from_secs(now + dt), Ev::NodeFail);
    }

    /// One node fails: whatever ran on it dies, the node goes down for the
    /// repair time.
    fn handle_node_failure(&mut self, now: f64) {
        let Some(model) = self.cfg.failures else {
            return;
        };
        // Pick a victim uniformly among up nodes.
        let up: Vec<NodeId> = self
            .platform
            .node_ids()
            .filter(|n| !self.down.contains(n))
            .collect();
        if !up.is_empty() {
            let victim = up[(self.next_uniform() * up.len() as f64) as usize % up.len()];
            self.down.insert(victim);
            self.sim.schedule_at(
                Time::from_secs(now + model.repair_time),
                Ev::NodeRepair(victim),
            );
            self.bus.emit(SimEvent::NodeFailed {
                time: now,
                node: victim,
            });

            if self.free.remove(&victim) {
                // Idle node: just out of the pool until repaired.
            } else if self.reserved.contains(&victim) {
                // Reserved for a pending expansion: cancel that reconfig so
                // the job never receives a dead node.
                let owner = self
                    .jobs
                    .values()
                    .find(|rt| {
                        rt.pending_reconfig
                            .as_ref()
                            .is_some_and(|nodes| nodes.contains(&victim))
                    })
                    .map(|rt| rt.spec.id);
                if let Some(id) = owner {
                    let rt = self.jobs.get_mut(&id).expect("owner exists");
                    let nodes = rt.pending_reconfig.take().expect("checked");
                    let alloc: BTreeSet<NodeId> = rt.alloc.iter().copied().collect();
                    for node in nodes {
                        if !alloc.contains(&node) && self.reserved.remove(&node) && node != victim {
                            self.free.insert(node);
                        }
                    }
                    self.reserved.remove(&victim);
                    self.bus.emit(SimEvent::Warning {
                        time: now,
                        job: Some(id),
                        kind: WarningKind::ReconfigCancelled,
                        message: format!("{id}: reconfiguration cancelled, {victim} failed"),
                    });
                }
            } else {
                // Allocated: the job dies with the node.
                let owner = self
                    .jobs
                    .values()
                    .find(|rt| {
                        matches!(rt.state, RunState::Running | RunState::Reconfiguring)
                            && rt.alloc.contains(&victim)
                    })
                    .map(|rt| rt.spec.id);
                if let Some(id) = owner {
                    self.bus.emit(SimEvent::Warning {
                        time: now,
                        job: Some(id),
                        kind: WarningKind::NodeFailureKill,
                        message: format!("{id}: killed by failure of {victim}"),
                    });
                    self.terminate(id, now, Outcome::NodeFailure);
                    // terminate() freed the whole allocation including the
                    // victim; pull it back out of the pool.
                    self.free.remove(&victim);
                    if self.cfg.invoke_on_completion {
                        self.invoke_scheduler(now, Invocation::JobCompleted(id));
                    }
                }
            }
        }
        self.schedule_next_failure(now);
    }

    // ------------------------------------------------------------------
    // Allocation changes
    // ------------------------------------------------------------------

    /// Applies a pending reconfiguration at a scheduling point. Returns
    /// `true` if the job is now paused paying the reconfiguration cost.
    fn apply_pending_reconfig(&mut self, id: JobId, now: f64) -> bool {
        let rt = self.jobs.get_mut(&id).expect("reconfig for unknown job");
        let Some(new_nodes) = rt.pending_reconfig.take() else {
            return false;
        };
        let old: BTreeSet<NodeId> = rt.alloc.iter().copied().collect();
        let new: BTreeSet<NodeId> = new_nodes.iter().copied().collect();
        let removed: Vec<NodeId> = old.difference(&new).copied().collect();
        let added: Vec<NodeId> = new.difference(&old).copied().collect();

        rt.accrue(now);
        rt.alloc = new_nodes;
        rt.reconfigs += 1;
        rt.max_nodes_held = rt.max_nodes_held.max(rt.alloc.len() as u32);
        let new_size = rt.alloc.len() as u32;
        if let Some((want, asked)) = rt.evolving_desired {
            if rt.alloc.len() == want as usize {
                rt.evolving_latencies.push(now - asked);
                rt.evolving_desired = None;
            }
        }

        for &node in &removed {
            self.free.insert(node);
        }
        for &node in &added {
            let was_reserved = self.reserved.remove(&node);
            debug_assert!(was_reserved, "expansion node {node} was not reserved");
        }
        let any_removed = !removed.is_empty();
        self.bus.emit(SimEvent::JobReconfigured {
            time: now,
            job: id,
            added,
            removed,
            new_size,
        });
        if any_removed && self.cfg.invoke_on_release {
            // Hand the released nodes out immediately; otherwise the queue
            // head waits for the next periodic tick.
            self.invoke_scheduler(now, Invocation::SchedulingPoint(id));
        }

        // Pay the cost.
        let rt = self.jobs.get_mut(&id).unwrap();
        let epoch = rt.epoch;
        let specs: Vec<ActivitySpec> = match self.cfg.reconfig_cost {
            ReconfigCost::Free => return false,
            ReconfigCost::Fixed(secs) => {
                vec![ActivitySpec::new(secs, []).with_bound(1.0)]
            }
            ReconfigCost::DataVolume { bytes_per_node } => rt
                .alloc
                .iter()
                .map(|&n| {
                    ActivitySpec::new(bytes_per_node, [])
                        .with_usage(self.platform.node(n).nic_up, 1.0)
                        .with_usage(self.platform.backbone, 1.0)
                })
                .collect(),
        };
        rt.state = RunState::Reconfiguring;
        rt.outstanding = specs.len();
        let mut acts = Vec::with_capacity(specs.len());
        for spec in specs {
            acts.push(self.sim.start_activity(spec, Ev::Unit { job: id, epoch }));
        }
        self.jobs.get_mut(&id).unwrap().activities = acts;
        true
    }

    /// Ends a job (completion or kill): cancels work, releases nodes,
    /// records the outcome.
    fn terminate(&mut self, id: JobId, now: f64, outcome: Outcome) {
        let rt = self.jobs.get_mut(&id).expect("terminate unknown job");
        debug_assert!(rt.state != RunState::Done);
        rt.epoch += 1;
        let activities = std::mem::take(&mut rt.activities);
        rt.outstanding = 0;
        if let Some(timer) = rt.walltime_timer.take() {
            self.sim.cancel_timer(timer);
        }
        for act in activities {
            let _ = self.sim.cancel_activity(act);
        }
        let rt = self.jobs.get_mut(&id).unwrap();
        rt.accrue(now);
        let released = std::mem::take(&mut rt.alloc);
        let pending = rt.pending_reconfig.take();
        rt.state = RunState::Done;
        self.outcomes.insert(id, (outcome, now));

        for &node in &released {
            self.free.insert(node);
        }
        // Reserved expansion nodes of an unapplied reconfig go back too.
        if let Some(nodes) = pending {
            for node in nodes {
                if self.reserved.remove(&node) {
                    self.free.insert(node);
                }
            }
        }
        self.bus.emit(SimEvent::JobCompleted {
            time: now,
            job: id,
            outcome,
            released,
        });
        if outcome != Outcome::Completed {
            self.cascade_dependency_failures(now);
        }
    }

    // ------------------------------------------------------------------
    // Scheduler interplay
    // ------------------------------------------------------------------

    fn ensure_tick(&mut self, now: f64) {
        let work_remains = self.jobs.values().any(|j| j.state != RunState::Done);
        if !self.tick_pending && work_remains {
            self.tick_pending = true;
            self.sim.schedule_at(
                Time::from_secs(now + self.cfg.scheduling_interval),
                Ev::Tick,
            );
        }
    }

    fn build_view(&self, now: f64) -> SystemView {
        let mut jobs = Vec::new();
        for rt in self.jobs.values() {
            let state = match rt.state {
                RunState::Pending
                    if rt.spec.submit_time <= now && deps_satisfied(rt, &self.outcomes) =>
                {
                    JobState::Pending
                }
                RunState::Running | RunState::Reconfiguring => JobState::Running(JobRunInfo {
                    nodes: rt.alloc.clone(),
                    start_time: rt.start_time.unwrap_or(now),
                    reconfig_pending: rt.pending_reconfig.is_some()
                        || rt.state == RunState::Reconfiguring,
                    progress: rt.progress(),
                }),
                _ => continue,
            };
            jobs.push(JobView {
                id: rt.spec.id,
                class: rt.spec.class,
                state,
                submit_time: rt.spec.submit_time,
                min_nodes: rt.spec.min_nodes,
                max_nodes: rt.spec.max_nodes,
                walltime: rt.spec.walltime,
                evolving_request: rt.evolving_desired.map(|(n, _)| n),
                fixed_start: rt.spec.user_fixed_start(),
            });
        }
        SystemView {
            now,
            total_nodes: self.platform.num_nodes(),
            free_nodes: self.free.iter().copied().collect(),
            jobs,
        }
    }

    /// Invokes the scheduler through the driver and applies its decisions.
    /// Returns how many decisions were applied. Re-entrant invocations
    /// (triggered by lifecycle changes during application) are deferred
    /// and run after the current one finishes. A transport failure sets
    /// `self.fatal` and aborts the run.
    fn invoke_scheduler(&mut self, now: f64, why: Invocation) -> usize {
        if self.fatal.is_some() {
            return 0;
        }
        self.announce_submissions(now);
        if self.in_invoke {
            self.deferred_invokes.push(why);
            return 0;
        }
        self.in_invoke = true;
        let _span = self.telemetry.span("engine.invoke_seconds");
        let mut applied = 0;
        let mut pending = vec![why];
        while let Some(why) = pending.pop() {
            let view = self.build_view(now);
            let decisions = match self.driver.invoke(now, &view, why) {
                Ok(decisions) => decisions,
                Err(e) => {
                    self.fatal = Some(e);
                    break;
                }
            };
            let returned = decisions.len();
            let mut accepted = 0;
            for decision in decisions {
                let job = decision.job();
                match self.apply_decision(decision, now) {
                    Ok(()) => accepted += 1,
                    Err(reason) => self.bus.emit(SimEvent::DecisionRejected {
                        time: now,
                        job,
                        reason,
                    }),
                }
            }
            applied += accepted;
            // Deterministic facts only (no wall-clock data): the event
            // stream stays byte-identical whether telemetry is on or off.
            self.bus.emit(SimEvent::SchedulerInvoked {
                time: now,
                reason: why.to_string(),
                decisions: returned,
                applied: accepted,
            });
            pending.append(&mut self.deferred_invokes);
        }
        self.in_invoke = false;
        applied
    }

    /// Validates one decision against live state and applies it.
    fn apply_decision(&mut self, decision: Decision, now: f64) -> Result<(), String> {
        match decision {
            Decision::Start { job, nodes } => self.apply_start(job, nodes, now),
            Decision::Reconfigure { job, nodes } => self.apply_reconfigure(job, nodes, now),
            Decision::Kill { job } => {
                let target = self.decision_ctx(now).validate_kill(job)?;
                match target {
                    KillTarget::Pending => {
                        let rt = self.jobs.get_mut(&job).unwrap();
                        rt.state = RunState::Done;
                        rt.epoch += 1;
                        self.outcomes.insert(job, (Outcome::Killed, now));
                        self.bus.emit(SimEvent::JobCompleted {
                            time: now,
                            job,
                            outcome: Outcome::Killed,
                            released: Vec::new(),
                        });
                        self.cascade_dependency_failures(now);
                    }
                    KillTarget::Active => {
                        self.terminate(job, now, Outcome::Killed);
                    }
                }
                Ok(())
            }
        }
    }

    fn decision_ctx(&self, now: f64) -> DecisionCtx<'_> {
        DecisionCtx {
            jobs: &self.jobs,
            free: &self.free,
            outcomes: &self.outcomes,
            now,
        }
    }

    fn apply_start(&mut self, id: JobId, nodes: Vec<NodeId>, now: f64) -> Result<(), String> {
        let unique = self.decision_ctx(now).validate_start(id, &nodes)?;
        let walltime = self.jobs[&id].spec.walltime;

        for node in &unique {
            self.free.remove(node);
        }
        let n = nodes.len();
        let rt = self.jobs.get_mut(&id).unwrap();
        rt.state = RunState::Running;
        rt.alloc = nodes;
        rt.start_time = Some(now);
        rt.last_alloc_change = now;
        rt.max_nodes_held = n as u32;
        let epoch = rt.epoch;
        let alloc = rt.alloc.clone();
        self.bus.emit(SimEvent::JobStarted {
            time: now,
            job: id,
            nodes: alloc,
        });
        if let Some(w) = walltime {
            let timer = self
                .sim
                .schedule_at(Time::from_secs(now + w), Ev::Walltime { job: id, epoch });
            self.jobs.get_mut(&id).unwrap().walltime_timer = Some(timer);
        }
        self.continue_job(id, now);
        Ok(())
    }

    fn apply_reconfigure(&mut self, id: JobId, nodes: Vec<NodeId>, now: f64) -> Result<(), String> {
        let added = self.decision_ctx(now).validate_reconfigure(id, &nodes)?;
        // Reserve additions so no later decision hands them out.
        for node in &added {
            self.free.remove(node);
            self.reserved.insert(*node);
        }
        self.jobs.get_mut(&id).unwrap().pending_reconfig = Some(nodes);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Reporting
    // ------------------------------------------------------------------

    fn build_report(mut self) -> Result<Report, SimError> {
        self.driver.shutdown();
        let mut records = Vec::with_capacity(self.jobs.len());
        for (id, rt) in &self.jobs {
            let (outcome, end) = match self.outcomes.get(id) {
                Some(&(o, e)) => (o, Some(e)),
                None => (Outcome::Completed, None), // never finished (aborted run)
            };
            records.push(JobRecord {
                id: *id,
                class: rt.spec.class,
                submit: rt.spec.submit_time,
                start: rt.start_time,
                end,
                outcome,
                node_seconds: rt.node_seconds,
                max_nodes_held: rt.max_nodes_held,
                reconfigs: rt.reconfigs,
                evolving_latencies: rt.evolving_latencies.clone(),
            });
        }
        // Gantt intervals left open by an aborted run close at the horizon.
        let horizon = records.iter().filter_map(|r| r.end).fold(0.0f64, f64::max);
        let (utilization, gantt, warnings) = self
            .bus
            .into_parts(horizon)
            .map_err(|message| SimError::Observer { message })?;
        Ok(Report {
            jobs: records,
            utilization,
            gantt,
            events: self.sim.events_delivered(),
            recomputes: self.sim.recompute_count(),
            scheduler_invocations: self.driver.invocations(),
            warnings,
            total_nodes: self.platform.num_nodes(),
        })
    }
}

// A whole simulation run is a unit of work the campaign executor moves
// across worker threads; this fails to compile if any layer regresses to
// non-`Send` state (`Rc`, `RefCell`, raw pointers, ...).
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Simulation>();
};

/// Wall-clock progress heartbeat for `--progress`: prints sim-time, job
/// completion, and event throughput to stderr. Reads the clock only every
/// `CHECK_EVERY` events so the hot loop stays cheap, and writes nothing
/// anywhere that could influence results.
struct Heartbeat {
    interval: f64,
    started: std::time::Instant,
    last_beat: std::time::Instant,
    countdown: u32,
}

impl Heartbeat {
    /// How many events to skip between clock reads.
    const CHECK_EVERY: u32 = 4096;

    fn new(interval: f64) -> Self {
        let now = std::time::Instant::now();
        Heartbeat {
            interval,
            started: now,
            last_beat: now,
            countdown: Self::CHECK_EVERY,
        }
    }

    fn maybe_beat(
        &mut self,
        sim_now: f64,
        jobs: &BTreeMap<JobId, JobRuntime>,
        outcomes: &HashMap<JobId, (Outcome, f64)>,
        events: u64,
    ) {
        self.countdown -= 1;
        if self.countdown > 0 {
            return;
        }
        self.countdown = Self::CHECK_EVERY;
        let now = std::time::Instant::now();
        if now.duration_since(self.last_beat).as_secs_f64() < self.interval {
            return;
        }
        self.last_beat = now;
        let total = jobs.len();
        let done = outcomes.len();
        let pct = if total > 0 {
            100.0 * done as f64 / total as f64
        } else {
            100.0
        };
        let wall = now.duration_since(self.started).as_secs_f64();
        let rate = if wall > 0.0 {
            events as f64 / wall
        } else {
            0.0
        };
        eprintln!(
            "[progress] sim t={sim_now:.1}s  jobs {done}/{total} ({pct:.1}%)  {rate:.0} events/s"
        );
    }
}
