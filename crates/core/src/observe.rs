//! Typed simulation events and the observer bus.
//!
//! The engine announces every externally meaningful state change as a
//! [`SimEvent`] on an internal bus. The built-in report statistics —
//! utilization change points, the Gantt trace, structured warnings — are
//! collectors listening on that bus, and user code can attach further
//! [`Observer`]s (e.g. the [`EventTraceWriter`] that streams the run as
//! JSON lines) via [`crate::Simulation::add_observer`] before running.
//!
//! Events are serde-serializable with an `"event"` discriminator tag, so a
//! JSONL event trace doubles as a machine-readable run log.

use std::collections::HashMap;
use std::io::Write;

use elastisim_platform::NodeId;
use elastisim_workload::JobId;
use serde::{Deserialize, Serialize};

use crate::stats::{GanttEntry, Outcome, UtilizationSeries, Warning, WarningKind};

/// One externally observable state change, stamped with simulated time.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(tag = "event", rename_all = "snake_case")]
pub enum SimEvent {
    /// A job reached its submit time and entered the queue.
    JobSubmitted {
        /// Simulated time, seconds.
        time: f64,
        /// The submitted job.
        job: JobId,
    },
    /// A pending job started on an allocation.
    JobStarted {
        /// Simulated time, seconds.
        time: f64,
        /// The started job.
        job: JobId,
        /// The nodes allocated to it.
        nodes: Vec<NodeId>,
    },
    /// A reconfiguration was applied to a running job.
    JobReconfigured {
        /// Simulated time, seconds.
        time: f64,
        /// The reconfigured job.
        job: JobId,
        /// Nodes added to the allocation.
        added: Vec<NodeId>,
        /// Nodes removed from the allocation.
        removed: Vec<NodeId>,
        /// Allocation size after the change.
        new_size: u32,
    },
    /// A job left the system, releasing its allocation.
    JobCompleted {
        /// Simulated time, seconds.
        time: f64,
        /// The finished job.
        job: JobId,
        /// How it ended.
        outcome: Outcome,
        /// The nodes it held at the end (empty if it never started).
        released: Vec<NodeId>,
    },
    /// A node failed and is out of service.
    NodeFailed {
        /// Simulated time, seconds.
        time: f64,
        /// The failed node.
        node: NodeId,
    },
    /// A failed node was repaired and returned to service.
    NodeRepaired {
        /// Simulated time, seconds.
        time: f64,
        /// The repaired node.
        node: NodeId,
    },
    /// The engine rejected a scheduler decision as invalid.
    DecisionRejected {
        /// Simulated time, seconds.
        time: f64,
        /// The job the decision concerned.
        job: JobId,
        /// Why the decision was rejected.
        reason: String,
    },
    /// A lifecycle warning not tied to a decision (cancellations, stalls).
    Warning {
        /// Simulated time, seconds.
        time: f64,
        /// The job concerned, if any.
        #[serde(default)]
        job: Option<JobId>,
        /// Warning category.
        kind: WarningKind,
        /// Human-readable description.
        message: String,
    },
    /// The scheduler was invoked. Carries only deterministic facts (no
    /// wall-clock latency — that lives in the telemetry registry), so the
    /// event stream stays byte-identical across machines.
    SchedulerInvoked {
        /// Simulated time, seconds.
        time: f64,
        /// Why the scheduler ran (e.g. `periodic`, `submitted:job3`).
        reason: String,
        /// Number of decisions it returned.
        decisions: usize,
        /// Number of decisions the engine accepted (the rest were
        /// rejected as invalid).
        applied: usize,
    },
}

impl SimEvent {
    /// The simulated time the event carries.
    pub fn time(&self) -> f64 {
        match self {
            SimEvent::JobSubmitted { time, .. }
            | SimEvent::JobStarted { time, .. }
            | SimEvent::JobReconfigured { time, .. }
            | SimEvent::JobCompleted { time, .. }
            | SimEvent::NodeFailed { time, .. }
            | SimEvent::NodeRepaired { time, .. }
            | SimEvent::DecisionRejected { time, .. }
            | SimEvent::Warning { time, .. }
            | SimEvent::SchedulerInvoked { time, .. } => *time,
        }
    }
}

/// A listener on the simulation's event stream.
///
/// Observers are `Send` because a whole simulation run — observers
/// included — is a unit of work the campaign executor moves across
/// worker threads. Single-run observers still see events strictly in
/// emission order from one thread at a time.
pub trait Observer: Send {
    /// Called once per event, in emission order.
    fn on_event(&mut self, event: &SimEvent);

    /// Called once when the simulation ends (`horizon` is the latest job
    /// end time). Flush buffers here and report any deferred I/O failure;
    /// the error surfaces from the run as [`crate::SimError::Observer`].
    /// The default does nothing and succeeds.
    fn finish(&mut self, _horizon: f64) -> Result<(), String> {
        Ok(())
    }
}

/// Streams every event as one JSON line — a machine-readable run log.
///
/// Durability: the first write error is remembered and returned from
/// [`Observer::finish`] (subsequent events are dropped rather than
/// aborting the simulation mid-run), and the writer flushes both on
/// `finish` and on drop, so a trace is complete even if the run aborts
/// between the last event and `finish`. On top of that, the writer
/// flushes every [`EventTraceWriter::DEFAULT_FLUSH_EVERY`] events
/// (tunable via [`with_flush_every`](Self::with_flush_every)), so a
/// long-running campaign's trace can be tailed live instead of only
/// materializing at the end of the run.
pub struct EventTraceWriter {
    out: Box<dyn Write + Send>,
    /// First write error, kept until `finish` surfaces it.
    failed: Option<String>,
    finished: bool,
    /// Flush after this many events (0 disables periodic flushing).
    flush_every: usize,
    /// Events written since the last flush.
    since_flush: usize,
}

impl EventTraceWriter {
    /// Default periodic-flush interval, in events.
    pub const DEFAULT_FLUSH_EVERY: usize = 256;

    /// Wraps any writer (a file, a `Vec<u8>`, a pipe).
    pub fn new(out: impl Write + Send + 'static) -> Self {
        EventTraceWriter {
            out: Box::new(out),
            failed: None,
            finished: false,
            flush_every: Self::DEFAULT_FLUSH_EVERY,
            since_flush: 0,
        }
    }

    /// Creates (truncating) a trace file at `path`, buffered.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(EventTraceWriter::new(std::io::BufWriter::new(file)))
    }

    /// Sets the periodic-flush interval: the writer flushes its sink after
    /// every `events` events. `0` disables periodic flushing (flush on
    /// finish/drop only, the pre-campaign behaviour).
    pub fn with_flush_every(mut self, events: usize) -> Self {
        self.flush_every = events;
        self
    }
}

impl Observer for EventTraceWriter {
    fn on_event(&mut self, event: &SimEvent) {
        if self.failed.is_some() {
            return;
        }
        let line = serde_json::to_string(event).expect("event serialization cannot fail");
        if let Err(e) = writeln!(self.out, "{line}") {
            self.failed = Some(format!("event trace write failed, trace truncated: {e}"));
            return;
        }
        self.since_flush += 1;
        if self.flush_every > 0 && self.since_flush >= self.flush_every {
            self.since_flush = 0;
            if let Err(e) = self.out.flush() {
                self.failed = Some(format!("event trace flush failed, trace truncated: {e}"));
            }
        }
    }

    fn finish(&mut self, _horizon: f64) -> Result<(), String> {
        self.finished = true;
        if let Some(e) = self.failed.take() {
            return Err(e);
        }
        self.out
            .flush()
            .map_err(|e| format!("event trace flush failed: {e}"))
    }
}

impl Drop for EventTraceWriter {
    fn drop(&mut self) {
        // Last-resort durability for runs that abort before `finish`:
        // flush buffered lines, reporting (not panicking) on failure.
        if !self.finished && self.failed.is_none() {
            if let Err(e) = self.out.flush() {
                eprintln!("event trace flush failed on drop: {e}");
            }
        }
    }
}

/// Wraps an observer, recording the wall-clock cost of each `on_event`
/// into the named telemetry time histogram — used to measure the
/// invariant checker's overhead without touching its code.
pub struct TimedObserver {
    inner: Box<dyn Observer>,
    telemetry: elastisim_telemetry::Telemetry,
    metric: &'static str,
}

impl TimedObserver {
    /// Wraps `inner`; each `on_event` is timed into `metric`.
    pub fn new(
        inner: Box<dyn Observer>,
        telemetry: elastisim_telemetry::Telemetry,
        metric: &'static str,
    ) -> Self {
        TimedObserver {
            inner,
            telemetry,
            metric,
        }
    }
}

impl Observer for TimedObserver {
    fn on_event(&mut self, event: &SimEvent) {
        let _span = self.telemetry.span(self.metric);
        self.inner.on_event(event);
    }

    fn finish(&mut self, horizon: f64) -> Result<(), String> {
        self.inner.finish(horizon)
    }
}

/// Maintains the allocated-node change-point series.
pub(crate) struct UtilizationCollector {
    series: UtilizationSeries,
    allocated: u32,
}

impl UtilizationCollector {
    fn new() -> Self {
        let mut series = UtilizationSeries::default();
        series.record(0.0, 0);
        UtilizationCollector {
            series,
            allocated: 0,
        }
    }
}

impl Observer for UtilizationCollector {
    fn on_event(&mut self, event: &SimEvent) {
        match event {
            SimEvent::JobStarted { time, nodes, .. } => {
                self.allocated += nodes.len() as u32;
                self.series.record(*time, self.allocated);
            }
            SimEvent::JobReconfigured {
                time,
                added,
                removed,
                ..
            } => {
                self.allocated = self.allocated + added.len() as u32 - removed.len() as u32;
                self.series.record(*time, self.allocated);
            }
            SimEvent::JobCompleted { time, released, .. } => {
                self.allocated -= released.len() as u32;
                self.series.record(*time, self.allocated);
            }
            _ => {}
        }
    }
}

/// Builds the Gantt trace from start/reconfigure/complete events.
pub(crate) struct GanttCollector {
    enabled: bool,
    open: HashMap<(JobId, NodeId), f64>,
    entries: Vec<GanttEntry>,
}

impl GanttCollector {
    fn new(enabled: bool) -> Self {
        GanttCollector {
            enabled,
            open: HashMap::new(),
            entries: Vec::new(),
        }
    }

    fn open(&mut self, job: JobId, node: NodeId, now: f64) {
        if self.enabled {
            self.open.insert((job, node), now);
        }
    }

    fn close(&mut self, job: JobId, node: NodeId, now: f64) {
        if let Some(from) = self.open.remove(&(job, node)) {
            self.entries.push(GanttEntry {
                job,
                node,
                from,
                to: now,
            });
        }
    }

    /// Closes intervals left open by an aborted run at `horizon` and
    /// returns the sorted trace.
    fn finish(mut self, horizon: f64) -> Vec<GanttEntry> {
        let open: Vec<((JobId, NodeId), f64)> = self.open.drain().collect();
        for ((job, node), from) in open {
            self.entries.push(GanttEntry {
                job,
                node,
                from,
                to: horizon.max(from),
            });
        }
        self.entries.sort_by(|a, b| {
            a.from
                .total_cmp(&b.from)
                .then(a.job.cmp(&b.job))
                .then(a.node.cmp(&b.node))
        });
        self.entries
    }
}

impl Observer for GanttCollector {
    fn on_event(&mut self, event: &SimEvent) {
        match event {
            SimEvent::JobStarted { time, job, nodes } => {
                for &node in nodes {
                    self.open(*job, node, *time);
                }
            }
            SimEvent::JobReconfigured {
                time,
                job,
                added,
                removed,
                ..
            } => {
                for &node in removed {
                    self.close(*job, node, *time);
                }
                for &node in added {
                    self.open(*job, node, *time);
                }
            }
            SimEvent::JobCompleted {
                time,
                job,
                released,
                ..
            } => {
                for &node in released {
                    self.close(*job, node, *time);
                }
            }
            _ => {}
        }
    }
}

/// Turns rejection and warning events into structured [`Warning`]s.
pub(crate) struct WarningCollector {
    warnings: Vec<Warning>,
}

impl Observer for WarningCollector {
    fn on_event(&mut self, event: &SimEvent) {
        match event {
            SimEvent::DecisionRejected { time, job, reason } => self.warnings.push(Warning {
                time: *time,
                job: Some(*job),
                kind: WarningKind::DecisionRejected,
                message: reason.clone(),
            }),
            SimEvent::Warning {
                time,
                job,
                kind,
                message,
            } => self.warnings.push(Warning {
                time: *time,
                job: *job,
                kind: *kind,
                message: message.clone(),
            }),
            _ => {}
        }
    }
}

/// The engine's event bus: the three report collectors plus any externally
/// attached observers, all receiving every event in emission order.
pub(crate) struct EventBus {
    util: UtilizationCollector,
    gantt: GanttCollector,
    warnings: WarningCollector,
    external: Vec<Box<dyn Observer>>,
}

impl EventBus {
    pub(crate) fn new(record_gantt: bool) -> Self {
        EventBus {
            util: UtilizationCollector::new(),
            gantt: GanttCollector::new(record_gantt),
            warnings: WarningCollector {
                warnings: Vec::new(),
            },
            external: Vec::new(),
        }
    }

    pub(crate) fn add_observer(&mut self, observer: Box<dyn Observer>) {
        self.external.push(observer);
    }

    pub(crate) fn emit(&mut self, event: SimEvent) {
        self.util.on_event(&event);
        self.gantt.on_event(&event);
        self.warnings.on_event(&event);
        for obs in &mut self.external {
            obs.on_event(&event);
        }
    }

    /// Finishes every collector and returns the report pieces:
    /// `(utilization, gantt, warnings)`. Every external observer's
    /// `finish` runs (so all of them get to flush) before the first
    /// failure, if any, is reported.
    pub(crate) fn into_parts(
        mut self,
        horizon: f64,
    ) -> Result<(UtilizationSeries, Vec<GanttEntry>, Vec<Warning>), String> {
        let mut first_err = None;
        for obs in &mut self.external {
            if let Err(e) = obs.finish(horizon) {
                first_err.get_or_insert(e);
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        Ok((
            self.util.series,
            self.gantt.finish(horizon),
            self.warnings.warnings,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn started(time: f64, job: u64, nodes: &[u32]) -> SimEvent {
        SimEvent::JobStarted {
            time,
            job: JobId(job),
            nodes: nodes.iter().map(|&n| NodeId(n)).collect(),
        }
    }

    fn completed(time: f64, job: u64, nodes: &[u32]) -> SimEvent {
        SimEvent::JobCompleted {
            time,
            job: JobId(job),
            outcome: Outcome::Completed,
            released: nodes.iter().map(|&n| NodeId(n)).collect(),
        }
    }

    #[test]
    fn bus_collects_utilization_and_gantt() {
        let mut bus = EventBus::new(true);
        bus.emit(started(10.0, 1, &[0, 1]));
        bus.emit(SimEvent::JobReconfigured {
            time: 20.0,
            job: JobId(1),
            added: vec![NodeId(2)],
            removed: vec![NodeId(0)],
            new_size: 2,
        });
        bus.emit(completed(30.0, 1, &[1, 2]));
        let (util, gantt, warnings) = bus.into_parts(30.0).unwrap();
        assert_eq!(util.points, vec![(0.0, 0), (10.0, 2), (30.0, 0)]);
        // Three intervals: node0 [10,20], node1 [10,30], node2 [20,30].
        assert_eq!(gantt.len(), 3);
        assert_eq!(gantt[0].node, NodeId(0));
        assert_eq!(gantt[0].to, 20.0);
        assert!(warnings.is_empty());
    }

    #[test]
    fn gantt_disabled_records_nothing() {
        let mut bus = EventBus::new(false);
        bus.emit(started(0.0, 1, &[0]));
        bus.emit(completed(5.0, 1, &[0]));
        let (_, gantt, _) = bus.into_parts(5.0).unwrap();
        assert!(gantt.is_empty());
    }

    #[test]
    fn aborted_run_closes_open_intervals_at_horizon() {
        let mut bus = EventBus::new(true);
        bus.emit(started(10.0, 1, &[0]));
        let (_, gantt, _) = bus.into_parts(42.0).unwrap();
        assert_eq!(gantt.len(), 1);
        assert_eq!(gantt[0].to, 42.0);
    }

    #[test]
    fn warning_events_become_structured_warnings() {
        let mut bus = EventBus::new(false);
        bus.emit(SimEvent::DecisionRejected {
            time: 1.0,
            job: JobId(3),
            reason: "start: job3 given non-free nodes".into(),
        });
        bus.emit(SimEvent::Warning {
            time: 2.0,
            job: None,
            kind: WarningKind::NoProgress,
            message: "scheduler made no progress".into(),
        });
        let (_, _, warnings) = bus.into_parts(2.0).unwrap();
        assert_eq!(warnings.len(), 2);
        assert_eq!(warnings[0].kind, WarningKind::DecisionRejected);
        assert_eq!(warnings[0].job, Some(JobId(3)));
        assert_eq!(warnings[0].to_string(), "start: job3 given non-free nodes");
        assert_eq!(warnings[1].kind, WarningKind::NoProgress);
        assert_eq!(warnings[1].job, None);
    }

    #[test]
    fn external_observers_see_every_event() {
        struct Counter(std::sync::Arc<std::sync::Mutex<usize>>);
        impl Observer for Counter {
            fn on_event(&mut self, _: &SimEvent) {
                *self.0.lock().unwrap() += 1;
            }
        }
        let count = std::sync::Arc::new(std::sync::Mutex::new(0));
        let mut bus = EventBus::new(false);
        bus.add_observer(Box::new(Counter(count.clone())));
        bus.emit(started(0.0, 1, &[0]));
        bus.emit(completed(1.0, 1, &[0]));
        bus.into_parts(1.0).unwrap();
        assert_eq!(*count.lock().unwrap(), 2);
    }

    #[test]
    fn event_trace_writer_emits_tagged_json_lines() {
        use std::io::Read;
        let path =
            std::env::temp_dir().join(format!("elastisim-trace-{}.jsonl", std::process::id()));
        let mut writer = EventTraceWriter::create(&path).unwrap();
        writer.on_event(&started(0.0, 7, &[1]));
        writer.on_event(&SimEvent::NodeFailed {
            time: 3.5,
            node: NodeId(1),
        });
        writer.finish(3.5).unwrap();
        drop(writer);
        let mut text = String::new();
        std::fs::File::open(&path)
            .unwrap()
            .read_to_string(&mut text)
            .unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].contains(r#""event":"job_started""#),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].contains(r#""event":"node_failed""#),
            "{}",
            lines[1]
        );
        // Lines parse back into events.
        let back: SimEvent = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(
            back,
            SimEvent::NodeFailed {
                time: 3.5,
                node: NodeId(1)
            }
        );
    }

    /// A sink shared with the test so flushes through a `BufWriter` are
    /// observable after the writer is gone.
    #[derive(Clone, Default)]
    struct SharedSink(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl SharedSink {
        fn contents(&self) -> Vec<u8> {
            self.0.lock().unwrap().clone()
        }
    }

    impl Write for SharedSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// A writer that fails every operation.
    struct BrokenSink;

    impl Write for BrokenSink {
        fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk full"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Err(std::io::Error::other("disk full"))
        }
    }

    #[test]
    fn event_trace_write_errors_surface_from_finish() {
        let mut writer = EventTraceWriter::new(BrokenSink);
        writer.on_event(&started(0.0, 1, &[0]));
        writer.on_event(&completed(1.0, 1, &[0])); // dropped, not retried
        let err = writer.finish(1.0).unwrap_err();
        assert!(err.contains("disk full"), "{err}");
        assert!(err.contains("truncated"), "{err}");
    }

    #[test]
    fn event_trace_write_errors_fail_the_run() {
        use crate::SimError;
        let mut bus = EventBus::new(false);
        bus.add_observer(Box::new(EventTraceWriter::new(BrokenSink)));
        bus.emit(started(0.0, 1, &[0]));
        let err = bus.into_parts(1.0).unwrap_err();
        let sim_err = SimError::Observer { message: err };
        assert!(sim_err.to_string().contains("disk full"), "{sim_err}");
    }

    #[test]
    fn event_trace_writer_flushes_buffered_lines_on_drop() {
        let sink = SharedSink::default();
        let mut writer = EventTraceWriter::new(std::io::BufWriter::new(sink.clone()));
        writer.on_event(&started(0.0, 7, &[1]));
        // The line is small enough to still sit in the BufWriter.
        drop(writer);
        let text = String::from_utf8(sink.contents()).unwrap();
        assert!(text.contains(r#""event":"job_started""#), "{text}");
    }

    #[test]
    fn event_trace_writer_flushes_periodically_mid_run() {
        let sink = SharedSink::default();
        let mut writer =
            EventTraceWriter::new(std::io::BufWriter::new(sink.clone())).with_flush_every(3);
        for i in 0..2 {
            writer.on_event(&started(i as f64, i, &[0]));
        }
        // Two events < interval: everything still sits in the BufWriter.
        assert!(sink.contents().is_empty());
        writer.on_event(&started(2.0, 2, &[0]));
        // Third event crosses the interval: lines become visible live.
        let text = String::from_utf8(sink.contents()).unwrap();
        assert_eq!(text.lines().count(), 3, "{text}");
        // And the interval re-arms rather than flushing every event after.
        writer.on_event(&started(3.0, 3, &[0]));
        assert_eq!(
            String::from_utf8(sink.contents()).unwrap().lines().count(),
            3
        );
        writer.finish(4.0).unwrap();
        assert_eq!(
            String::from_utf8(sink.contents()).unwrap().lines().count(),
            4
        );
    }

    #[test]
    fn zero_interval_disables_periodic_flush() {
        let sink = SharedSink::default();
        let mut writer =
            EventTraceWriter::new(std::io::BufWriter::new(sink.clone())).with_flush_every(0);
        for i in 0..600 {
            writer.on_event(&started(i as f64, i, &[0]));
        }
        // More events than the default interval, but nothing forced out
        // beyond what the BufWriter spills on its own capacity.
        writer.finish(600.0).unwrap();
        assert_eq!(
            String::from_utf8(sink.contents()).unwrap().lines().count(),
            600
        );
    }

    #[test]
    fn events_roundtrip_through_json() {
        let events = vec![
            SimEvent::JobSubmitted {
                time: 0.0,
                job: JobId(1),
            },
            started(1.0, 1, &[0, 1]),
            SimEvent::JobReconfigured {
                time: 2.0,
                job: JobId(1),
                added: vec![NodeId(2)],
                removed: vec![],
                new_size: 3,
            },
            completed(3.0, 1, &[0, 1, 2]),
            SimEvent::NodeRepaired {
                time: 4.0,
                node: NodeId(0),
            },
            SimEvent::DecisionRejected {
                time: 5.0,
                job: JobId(2),
                reason: "start: job2 is not pending".into(),
            },
            SimEvent::Warning {
                time: 6.0,
                job: Some(JobId(2)),
                kind: WarningKind::TaskFailed,
                message: "job2: task `t` failed".into(),
            },
        ];
        for ev in events {
            let json = serde_json::to_string(&ev).unwrap();
            let back: SimEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, ev);
            assert_eq!(back.time(), ev.time());
        }
    }
}
