#![warn(missing_docs)]

//! # elastisim — a batch-system simulator for malleable workloads
//!
//! A from-scratch Rust reproduction of the system described in *"ElastiSim:
//! A Batch-System Simulator for Malleable Workloads"* (Özden, Beringer,
//! Mazaheri, Fard, Wolf — ICPP 2022): a discrete-event simulator of an HPC
//! batch system whose distinguishing feature is first-class support for
//! rigid, moldable, **malleable**, and **evolving** jobs, with a decoupled
//! scheduling-algorithm interface.
//!
//! ## Architecture
//!
//! ```text
//!  PlatformSpec ──► Platform ──► flow resources (CPU/GPU/NIC/PFS/BB)
//!  Vec<JobSpec> ──► JobRuntime table        │ elastisim-des kernel
//!  SchedulerDriver ◄────── SystemView ──────┤ (max-min fair sharing)
//!   │ in-process trait │ external process   │
//!   │ decisions        ▼ (JSON wire proto)  ▼
//!   └─► Simulation::run() ──► SimEvent bus ──► Report (+ observers:
//!       (try_run for fallible transports)      Gantt, util, warnings,
//!                                              JSONL event trace)
//! ```
//!
//! Jobs execute a phase-structured [`elastisim_workload::ApplicationModel`];
//! phases iterate task lists (compute, communication collectives, PFS or
//! burst-buffer I/O, delays) whose loads are performance-model expressions
//! over `num_nodes`. After each iteration of a scheduling-point phase the
//! engine applies pending reconfigurations — the mechanism by which
//! malleable jobs grow and shrink — and evolving jobs emit resource
//! requests on phase entry.
//!
//! ## Quick start
//!
//! ```
//! use elastisim::{Simulation, SimConfig};
//! use elastisim_platform::PlatformSpec;
//! use elastisim_sched::ElasticScheduler;
//! use elastisim_workload::WorkloadConfig;
//!
//! let platform = PlatformSpec::homogeneous(
//!     "demo", 16, elastisim_platform::NodeSpec::default());
//! let jobs = WorkloadConfig::new(10)
//!     .with_platform_nodes(16)
//!     .with_malleable_fraction(0.5)
//!     .generate();
//! let sim = Simulation::new(
//!     &platform, jobs, Box::new(ElasticScheduler::new()), SimConfig::default(),
//! ).unwrap();
//! let report = sim.run();
//! assert_eq!(report.summary().completed, 10);
//! ```

pub mod chrome;
mod config;
mod decisions;
mod driver;
mod engine;
mod exec;
pub mod invariant;
mod lifecycle;
pub mod observe;
pub mod recorder;
mod stats;
mod trace;

pub use chrome::ChromeTraceWriter;
pub use config::{FailureModel, ReconfigCost, SimConfig};
pub use driver::{SchedulerDriver, SimError};
pub use elastisim_des::ParPolicy;
pub use engine::Simulation;
pub use exec::ExecError;
pub use invariant::{InvariantChecker, InvariantViolation};
pub use observe::{EventTraceWriter, Observer, SimEvent, TimedObserver};
pub use recorder::FlightRecorder;
pub use stats::{
    report_fingerprint, GanttEntry, JobRecord, Outcome, Report, Summary, UtilizationSeries,
    Warning, WarningKind,
};
pub use trace::{gantt_csv, jobs_csv, utilization_csv};
