//! Statistics collection and the simulation report.

use elastisim_platform::NodeId;
use elastisim_workload::{JobClass, JobId};
use serde::{Deserialize, Serialize};

/// Why a job left the system.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Outcome {
    /// Ran its whole application.
    Completed,
    /// Exceeded its walltime limit and was killed.
    WalltimeExceeded,
    /// Removed by a scheduler `Kill` decision (or cancelled because a
    /// dependency did not complete).
    Killed,
    /// Lost to a node failure.
    NodeFailure,
}

/// Per-job accounting.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job id.
    pub id: JobId,
    /// Elasticity class.
    pub class: JobClass,
    /// Submission time.
    pub submit: f64,
    /// Start time (`None` if it never started).
    pub start: Option<f64>,
    /// End time (`None` only for jobs cut off by an aborted run).
    pub end: Option<f64>,
    /// How it ended.
    pub outcome: Outcome,
    /// Integral of allocated nodes over the job's runtime.
    pub node_seconds: f64,
    /// Largest allocation it ever held.
    pub max_nodes_held: u32,
    /// Number of applied reconfigurations.
    pub reconfigs: u32,
    /// Latency (seconds) from each evolving request to its application;
    /// empty for non-evolving jobs (experiment R-F3's metric).
    pub evolving_latencies: Vec<f64>,
}

impl JobRecord {
    /// Queue wait: start − submit.
    pub fn wait(&self) -> Option<f64> {
        self.start.map(|s| s - self.submit)
    }

    /// Turnaround: end − submit.
    pub fn turnaround(&self) -> Option<f64> {
        self.end.map(|e| e - self.submit)
    }

    /// Runtime: end − start.
    pub fn runtime(&self) -> Option<f64> {
        match (self.start, self.end) {
            (Some(s), Some(e)) => Some(e - s),
            _ => None,
        }
    }

    /// Bounded slowdown with the conventional 10-second floor.
    pub fn bounded_slowdown(&self) -> Option<f64> {
        let t = self.turnaround()?;
        let r = self.runtime()?.max(10.0);
        Some((t / r).max(1.0))
    }
}

/// One allocation interval for the Gantt trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GanttEntry {
    /// The job.
    pub job: JobId,
    /// The node.
    pub node: NodeId,
    /// Interval start.
    pub from: f64,
    /// Interval end.
    pub to: f64,
}

/// Change-point series of the number of allocated nodes over time; exact
/// (not sampled), so any utilization plot can be derived.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct UtilizationSeries {
    /// `(time, allocated nodes)` — the count holds from this instant until
    /// the next entry.
    pub points: Vec<(f64, u32)>,
}

impl UtilizationSeries {
    pub(crate) fn record(&mut self, t: f64, allocated: u32) {
        if let Some(&(lt, lv)) = self.points.last() {
            if lv == allocated {
                return;
            }
            debug_assert!(t >= lt);
        }
        self.points.push((t, allocated));
    }

    /// Integral of allocated nodes over `[0, horizon]`, node-seconds.
    pub fn node_seconds(&self, horizon: f64) -> f64 {
        let mut acc = 0.0;
        for w in self.points.windows(2) {
            let (t0, v) = w[0];
            let (t1, _) = w[1];
            acc += v as f64 * (t1.min(horizon) - t0.min(horizon));
        }
        if let Some(&(t, v)) = self.points.last() {
            if horizon > t {
                acc += v as f64 * (horizon - t);
            }
        }
        acc
    }

    /// Mean allocated nodes over `[0, horizon]`.
    pub fn mean_allocated(&self, horizon: f64) -> f64 {
        if horizon <= 0.0 {
            return 0.0;
        }
        self.node_seconds(horizon) / horizon
    }

    /// Resamples at fixed `dt` (for plotting), returning `(time, value)`
    /// rows covering `[0, horizon]`.
    pub fn resample(&self, dt: f64, horizon: f64) -> Vec<(f64, u32)> {
        assert!(dt > 0.0);
        let mut out = Vec::new();
        let mut idx = 0;
        let mut current = 0u32;
        let mut t = 0.0;
        while t <= horizon {
            while idx < self.points.len() && self.points[idx].0 <= t {
                current = self.points[idx].1;
                idx += 1;
            }
            out.push((t, current));
            t += dt;
        }
        out
    }
}

/// Category of a [`Warning`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum WarningKind {
    /// The engine rejected a scheduler decision as invalid.
    DecisionRejected,
    /// The scheduler stopped making progress with pending jobs left.
    NoProgress,
    /// Activities were still in flight when the simulation ended.
    StalledActivities,
    /// A pending job was cancelled because a dependency did not complete.
    DependencyCancelled,
    /// A task could not be translated into platform activities.
    TaskFailed,
    /// A pending reconfiguration was cancelled by a node failure.
    ReconfigCancelled,
    /// A running job was killed by a node failure.
    NodeFailureKill,
}

/// One structured warning from a run: when it happened, which job it
/// concerns (if any), its category, and the human-readable message.
///
/// `Display` prints just the message, so text output built from warnings
/// is unchanged from when these were plain strings.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Warning {
    /// Simulated time the warning was raised.
    pub time: f64,
    /// The job concerned, when the warning is about one job.
    #[serde(default)]
    pub job: Option<JobId>,
    /// What category of problem this is.
    pub kind: WarningKind,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Warning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Aggregate metrics over the completed jobs of a run.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Summary {
    /// Number of jobs that completed normally.
    pub completed: usize,
    /// Number of killed jobs (walltime or scheduler).
    pub killed: usize,
    /// Latest end time of any job (the makespan of the workload).
    pub makespan: f64,
    /// Mean queue wait of started jobs.
    pub mean_wait: f64,
    /// Mean turnaround of finished jobs.
    pub mean_turnaround: f64,
    /// Mean bounded slowdown of finished jobs.
    pub mean_bounded_slowdown: f64,
    /// Median queue wait (nearest-rank) of started jobs.
    #[serde(default)]
    pub p50_wait: f64,
    /// 95th-percentile queue wait of started jobs.
    #[serde(default)]
    pub p95_wait: f64,
    /// 99th-percentile queue wait of started jobs.
    #[serde(default)]
    pub p99_wait: f64,
    /// Median bounded slowdown of finished jobs.
    #[serde(default)]
    pub p50_bounded_slowdown: f64,
    /// 95th-percentile bounded slowdown of finished jobs.
    #[serde(default)]
    pub p95_bounded_slowdown: f64,
    /// 99th-percentile bounded slowdown of finished jobs.
    #[serde(default)]
    pub p99_bounded_slowdown: f64,
    /// Node-seconds allocated across all jobs / (nodes × makespan).
    pub utilization: f64,
}

/// Full result of one simulation run.
///
/// Serializes to JSON in full — the conformance harness pins golden
/// snapshots of it and uses the serialized form as a determinism
/// fingerprint (equal seeds must give byte-identical reports).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Report {
    /// Per-job records, ascending id.
    pub jobs: Vec<JobRecord>,
    /// Allocated-node change points.
    pub utilization: UtilizationSeries,
    /// Gantt trace (empty unless enabled in the config).
    pub gantt: Vec<GanttEntry>,
    /// Number of user events the DES delivered.
    pub events: u64,
    /// Number of fair-share recomputations.
    pub recomputes: u64,
    /// Number of scheduler invocations.
    pub scheduler_invocations: u64,
    /// Structured warnings: rejected decisions, cancelled jobs, stalls.
    pub warnings: Vec<Warning>,
    /// Platform size, for utilization math.
    pub total_nodes: usize,
}

impl Report {
    /// Computes aggregate metrics.
    pub fn summary(&self) -> Summary {
        let finished: Vec<&JobRecord> = self.jobs.iter().filter(|j| j.end.is_some()).collect();
        let makespan = finished.iter().filter_map(|j| j.end).fold(0.0f64, f64::max);
        let waits: Vec<f64> = self.jobs.iter().filter_map(JobRecord::wait).collect();
        let tats: Vec<f64> = finished.iter().filter_map(|j| j.turnaround()).collect();
        let slows: Vec<f64> = finished
            .iter()
            .filter_map(|j| j.bounded_slowdown())
            .collect();
        let node_seconds: f64 = self.jobs.iter().map(|j| j.node_seconds).sum();
        Summary {
            completed: self
                .jobs
                .iter()
                .filter(|j| j.outcome == Outcome::Completed && j.end.is_some())
                .count(),
            killed: self
                .jobs
                .iter()
                .filter(|j| j.end.is_some() && j.outcome != Outcome::Completed)
                .count(),
            makespan,
            mean_wait: mean(&waits),
            mean_turnaround: mean(&tats),
            mean_bounded_slowdown: mean(&slows),
            p50_wait: self.quantile(0.50, JobRecord::wait).unwrap_or(0.0),
            p95_wait: self.quantile(0.95, JobRecord::wait).unwrap_or(0.0),
            p99_wait: self.quantile(0.99, JobRecord::wait).unwrap_or(0.0),
            p50_bounded_slowdown: self
                .quantile(0.50, JobRecord::bounded_slowdown)
                .unwrap_or(0.0),
            p95_bounded_slowdown: self
                .quantile(0.95, JobRecord::bounded_slowdown)
                .unwrap_or(0.0),
            p99_bounded_slowdown: self
                .quantile(0.99, JobRecord::bounded_slowdown)
                .unwrap_or(0.0),
            utilization: if makespan > 0.0 && self.total_nodes > 0 {
                node_seconds / (self.total_nodes as f64 * makespan)
            } else {
                0.0
            },
        }
    }

    /// The record for one job.
    pub fn job(&self, id: JobId) -> Option<&JobRecord> {
        self.jobs.iter().find(|j| j.id == id)
    }

    /// Aggregate metrics restricted to one job class (e.g. to compare how
    /// rigid vs malleable jobs fared inside a mixed workload).
    pub fn summary_for_class(&self, class: JobClass) -> Summary {
        let filtered = Report {
            jobs: self
                .jobs
                .iter()
                .filter(|j| j.class == class)
                .cloned()
                .collect(),
            utilization: UtilizationSeries::default(),
            gantt: Vec::new(),
            events: 0,
            recomputes: 0,
            scheduler_invocations: 0,
            warnings: Vec::new(),
            total_nodes: self.total_nodes,
        };
        let mut s = filtered.summary();
        // Utilization is a cluster-level quantity; it is not meaningful
        // per class.
        s.utilization = 0.0;
        s
    }

    /// The canonical determinism fingerprint of this report: its full
    /// pretty-printed JSON serialization. Two runs are equivalent iff
    /// their fingerprints are byte-identical. This is the single
    /// implementation shared by the conformance goldens and the campaign
    /// result cache — the cache is sound precisely because the
    /// determinism oracles pin same-scenario ⇒ same-fingerprint.
    pub fn fingerprint(&self) -> String {
        report_fingerprint(self)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1, nearest-rank) of a per-job metric over
    /// finished jobs, e.g. `report.quantile(0.95, |j| j.wait())`.
    pub fn quantile(&self, q: f64, metric: impl Fn(&JobRecord) -> Option<f64>) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let mut xs: Vec<f64> = self.jobs.iter().filter_map(metric).collect();
        if xs.is_empty() {
            return None;
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((xs.len() - 1) as f64 * q).round() as usize;
        Some(xs[idx])
    }
}

/// Serializes the full report as a deterministic fingerprint: two runs
/// are equivalent iff their fingerprints are byte-identical. Free-function
/// form of [`Report::fingerprint`]; `simtest::fingerprint` re-exports it.
pub fn report_fingerprint(report: &Report) -> String {
    serde_json::to_string_pretty(report).expect("report serialization cannot fail")
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, submit: f64, start: f64, end: f64) -> JobRecord {
        JobRecord {
            id: JobId(id),
            class: JobClass::Rigid,
            submit,
            start: Some(start),
            end: Some(end),
            outcome: Outcome::Completed,
            node_seconds: (end - start) * 2.0,
            max_nodes_held: 2,
            reconfigs: 0,
            evolving_latencies: vec![],
        }
    }

    #[test]
    fn job_record_derived_metrics() {
        let r = record(1, 10.0, 30.0, 130.0);
        assert_eq!(r.wait(), Some(20.0));
        assert_eq!(r.turnaround(), Some(120.0));
        assert_eq!(r.runtime(), Some(100.0));
        assert_eq!(r.bounded_slowdown(), Some(1.2));
    }

    #[test]
    fn bounded_slowdown_floors_short_jobs() {
        let r = record(1, 0.0, 100.0, 101.0); // 1 s runtime, 101 s turnaround
        assert_eq!(r.bounded_slowdown(), Some(101.0 / 10.0));
    }

    #[test]
    fn utilization_series_integrates() {
        let mut u = UtilizationSeries::default();
        u.record(0.0, 0);
        u.record(10.0, 4);
        u.record(20.0, 2);
        assert_eq!(u.node_seconds(30.0), 4.0 * 10.0 + 2.0 * 10.0);
        assert_eq!(u.mean_allocated(30.0), 60.0 / 30.0);
    }

    #[test]
    fn utilization_series_dedups_equal_values() {
        let mut u = UtilizationSeries::default();
        u.record(0.0, 2);
        u.record(5.0, 2);
        assert_eq!(u.points.len(), 1);
    }

    #[test]
    fn resample_steps() {
        let mut u = UtilizationSeries::default();
        u.record(0.0, 1);
        u.record(2.5, 3);
        let s = u.resample(1.0, 4.0);
        assert_eq!(s, vec![(0.0, 1), (1.0, 1), (2.0, 1), (3.0, 3), (4.0, 3)]);
    }

    #[test]
    fn summary_aggregates() {
        let report = Report {
            jobs: vec![record(1, 0.0, 0.0, 100.0), record(2, 0.0, 50.0, 150.0)],
            total_nodes: 4,
            ..Default::default()
        };
        let s = report.summary();
        assert_eq!(s.completed, 2);
        assert_eq!(s.makespan, 150.0);
        assert_eq!(s.mean_wait, 25.0);
        assert_eq!(s.mean_turnaround, 125.0);
        // node_seconds = 200 + 200 = 400; capacity = 4 × 150 = 600.
        assert!((s.utilization - 400.0 / 600.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_summary_is_zeroed() {
        let s = Report::default().summary();
        assert_eq!(s.completed, 0);
        assert_eq!(s.makespan, 0.0);
        assert_eq!(s.utilization, 0.0);
    }

    #[test]
    fn per_class_summary_filters() {
        let mut malleable = record(2, 0.0, 10.0, 60.0);
        malleable.class = JobClass::Malleable;
        let report = Report {
            jobs: vec![record(1, 0.0, 0.0, 100.0), malleable],
            total_nodes: 4,
            ..Default::default()
        };
        let rigid = report.summary_for_class(JobClass::Rigid);
        assert_eq!(rigid.completed, 1);
        assert_eq!(rigid.makespan, 100.0);
        let mall = report.summary_for_class(JobClass::Malleable);
        assert_eq!(mall.completed, 1);
        assert_eq!(mall.mean_wait, 10.0);
        assert_eq!(report.summary_for_class(JobClass::Evolving).completed, 0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let report = Report {
            jobs: (0..10).map(|i| record(i, 0.0, i as f64, 100.0)).collect(),
            total_nodes: 4,
            ..Default::default()
        };
        // Waits are 0..9.
        assert_eq!(report.quantile(0.0, |j| j.wait()), Some(0.0));
        assert_eq!(report.quantile(1.0, |j| j.wait()), Some(9.0));
        assert_eq!(report.quantile(0.5, |j| j.wait()), Some(5.0)); // round(4.5)=5
        assert_eq!(Report::default().quantile(0.5, |j| j.wait()), None);
    }

    #[test]
    #[should_panic]
    fn quantile_out_of_range_panics() {
        let _ = Report::default().quantile(1.5, |j| j.wait());
    }
}
