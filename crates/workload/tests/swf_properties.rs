//! Property tests for the SWF parser/writer, plus realistic header
//! fixtures modeled on Parallel Workloads Archive traces.

use elastisim_workload::{parse_swf, to_swf, SwfJob};
use proptest::prelude::*;

/// Deterministic per-case generator (SplitMix64), mirroring the scheme the
/// conformance harness uses: every random choice flows from one seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// An arbitrary but SWF-representable job: ids stay below 2^40 (the
/// parser reads every field through `f64`, exact only up to 2^53), times
/// are quarter-second multiples so `Display → parse` is lossless without
/// relying on long decimal expansions.
fn arbitrary_job(rng: &mut Rng) -> SwfJob {
    SwfJob {
        job_id: rng.below(1 << 40),
        submit: rng.below(4_000_000) as f64 / 4.0,
        runtime: rng.below(400_000) as f64 / 4.0,
        procs: 1 + rng.below(4096) as u32,
        requested_time: (rng.below(2) == 0).then(|| (1 + rng.below(400_000)) as f64 / 4.0),
        status: if rng.below(2) == 0 { 1 } else { 0 },
    }
}

proptest! {
    /// Round-trip oracle: serialize → parse recovers every field the
    /// simulator consumes, for arbitrary record batches.
    #[test]
    fn swf_roundtrips_through_writer_and_parser(seed in any::<u64>()) {
        let mut rng = Rng(seed);
        let jobs: Vec<SwfJob> = (0..1 + rng.below(40)).map(|_| arbitrary_job(&mut rng)).collect();
        let text = to_swf(&jobs);
        let back = parse_swf(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        prop_assert_eq!(jobs, back, "seed {} broke the round-trip", seed);
        // And a second lap: the writer's own output is a fixed point.
        let again = parse_swf(&to_swf(&parse_swf(&text).unwrap())).unwrap();
        prop_assert_eq!(parse_swf(&text).unwrap(), again);
    }

    /// A malformed line injected anywhere in an otherwise valid file is
    /// rejected with an error naming exactly that line.
    #[test]
    fn malformed_line_errors_carry_the_line_number(seed in any::<u64>()) {
        let mut rng = Rng(seed);
        let jobs: Vec<SwfJob> = (0..1 + rng.below(20)).map(|_| arbitrary_job(&mut rng)).collect();
        let mut lines: Vec<String> = to_swf(&jobs).lines().map(String::from).collect();
        let garbage = ["1 2 3", "not numbers at all here x x x x x x x x", "9 9 9 bogus 9 9 9 9 9 9 9"];
        let bad = garbage[rng.below(3) as usize];
        let at = 1 + rng.below(lines.len() as u64) as usize; // after the header comment
        lines.insert(at, bad.to_string());
        let err = parse_swf(&lines.join("\n")).expect_err("garbage line must be rejected");
        let msg = err.to_string();
        prop_assert!(
            msg.contains(&format!("line {}", at + 1)),
            "seed {}: error `{}` does not name line {}",
            seed, msg, at + 1
        );
    }
}

/// The fixture headers follow the PWA conventions (`; Field: value`
/// preamble, 18-field records); the parser must skip all of it and read
/// the jobs.
#[test]
fn parses_archive_style_header_fixtures() {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let expected = [
        ("cluster-a.swf", 4),
        ("cluster-b.swf", 3),
        ("cluster-c.swf", 2),
    ];
    for (name, jobs) in expected {
        let text = std::fs::read_to_string(dir.join(name)).unwrap();
        let parsed = parse_swf(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(parsed.len(), jobs, "{name}");
        for job in &parsed {
            assert!(
                job.procs >= 1,
                "{name}: job {} has no processors",
                job.job_id
            );
            assert!(job.runtime >= 0.0);
        }
    }
}
