//! Property tests for the SWF parser/writer, plus realistic header
//! fixtures modeled on Parallel Workloads Archive traces.

use elastisim_workload::{parse_swf, to_swf, SkipReason, SwfJob, SwfReader};
use proptest::prelude::*;

/// Deterministic per-case generator (SplitMix64), mirroring the scheme the
/// conformance harness uses: every random choice flows from one seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// An arbitrary but SWF-representable job: ids stay below 2^40 (the
/// parser reads every field through `f64`, exact only up to 2^53), times
/// are quarter-second multiples so `Display → parse` is lossless without
/// relying on long decimal expansions.
fn arbitrary_job(rng: &mut Rng) -> SwfJob {
    SwfJob {
        job_id: rng.below(1 << 40),
        submit: rng.below(4_000_000) as f64 / 4.0,
        runtime: rng.below(400_000) as f64 / 4.0,
        procs: 1 + rng.below(4096) as u32,
        requested_time: (rng.below(2) == 0).then(|| (1 + rng.below(400_000)) as f64 / 4.0),
        status: if rng.below(2) == 0 { 1 } else { 0 },
        preceding_job: (rng.below(4) == 0).then(|| rng.below(1 << 40)),
        think_time: (rng.below(4) == 0).then(|| rng.below(400_000) as f64 / 4.0),
    }
}

proptest! {
    /// Round-trip oracle: serialize → parse recovers every field the
    /// simulator consumes, for arbitrary record batches.
    #[test]
    fn swf_roundtrips_through_writer_and_parser(seed in any::<u64>()) {
        let mut rng = Rng(seed);
        let jobs: Vec<SwfJob> = (0..1 + rng.below(40)).map(|_| arbitrary_job(&mut rng)).collect();
        let text = to_swf(&jobs);
        let back = parse_swf(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        prop_assert_eq!(jobs, back, "seed {} broke the round-trip", seed);
        // And a second lap: the writer's own output is a fixed point.
        let again = parse_swf(&to_swf(&parse_swf(&text).unwrap())).unwrap();
        prop_assert_eq!(parse_swf(&text).unwrap(), again);
    }

    /// A malformed line injected anywhere in an otherwise valid file is
    /// rejected with an error naming exactly that line.
    #[test]
    fn malformed_line_errors_carry_the_line_number(seed in any::<u64>()) {
        let mut rng = Rng(seed);
        let jobs: Vec<SwfJob> = (0..1 + rng.below(20)).map(|_| arbitrary_job(&mut rng)).collect();
        let mut lines: Vec<String> = to_swf(&jobs).lines().map(String::from).collect();
        let garbage = ["1 2 3", "not numbers at all here x x x x x x x x", "9 9 9 bogus 9 9 9 9 9 9 9"];
        let bad = garbage[rng.below(3) as usize];
        let at = 1 + rng.below(lines.len() as u64) as usize; // after the header comment
        lines.insert(at, bad.to_string());
        let err = parse_swf(&lines.join("\n")).expect_err("garbage line must be rejected");
        let msg = err.to_string();
        prop_assert!(
            msg.contains(&format!("line {}", at + 1)),
            "seed {}: error `{}` does not name line {}",
            seed, msg, at + 1
        );
    }

    /// The lenient reader is total: garbage lines, `-1` sentinels, and
    /// cancelled records never surface as errors — every line is either a
    /// parsed job or a counted skip, and the two always partition the
    /// record lines.
    #[test]
    fn lenient_reader_partitions_lines_into_jobs_and_counted_skips(seed in any::<u64>()) {
        let mut rng = Rng(seed);
        let jobs: Vec<SwfJob> = (0..1 + rng.below(20)).map(|_| arbitrary_job(&mut rng)).collect();
        let mut lines: Vec<String> = to_swf(&jobs).lines().map(String::from).collect();
        let garbage = [
            "1 2 3",
            "not numbers at all here x x x x x x x x",
            "9 9 9 bogus 9 9 9 9 9 9 9",
            // Cancelled before start: runtime -1, status 5.
            "77 0 -1 -1 4 -1 -1 4 600 -1 5 -1 -1 -1 -1 -1 -1 -1",
            // No processors at all.
            "78 0 -1 60 -1 -1 -1 -1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1",
            // Runtime -1, no requested time to substitute.
            "79 0 -1 -1 4 -1 -1 4 -1 -1 1 -1 -1 -1 -1 -1 -1 -1",
        ];
        let n_bad = 1 + rng.below(4) as usize;
        for _ in 0..n_bad {
            let bad = garbage[rng.below(garbage.len() as u64) as usize];
            let at = rng.below(lines.len() as u64 + 1) as usize;
            lines.insert(at, bad.to_string());
        }
        let text = lines.join("\n");
        let mut reader = SwfReader::lenient(text.as_bytes());
        let parsed: Vec<SwfJob> = reader.by_ref().map(|r| r.unwrap()).collect();
        let record_lines = text
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with(';'))
            .count() as u64;
        prop_assert_eq!(
            reader.parsed() + reader.skip_report().total(),
            record_lines,
            "seed {}: jobs + skips must cover every record line", seed
        );
        prop_assert_eq!(parsed.len() as u64, reader.parsed());
        prop_assert_eq!(reader.skip_report().total(), n_bad as u64);
        // Every original job survives untouched.
        for job in &jobs {
            prop_assert!(parsed.contains(job), "seed {}: job {} lost", seed, job.job_id);
        }
        // Skip example line numbers point at actual record lines.
        for reason in SkipReason::ALL {
            for &lineno in reader.skip_report().example_lines(reason) {
                let line = text.lines().nth(lineno as usize - 1).unwrap_or("");
                prop_assert!(
                    garbage.contains(&line),
                    "seed {}: {} line {} is `{}`, not an injected bad line",
                    seed, reason, lineno, line
                );
            }
        }
    }
}

/// The malformed-trace fixture exercises every skip reason with known
/// line numbers; the lenient reader's report is pinned exactly, and the
/// strict parser rejects the file at its first bad line.
#[test]
fn malformed_fixture_skip_report_is_pinned() {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let text = std::fs::read_to_string(dir.join("malformed-mixed.swf")).unwrap();

    let mut reader = SwfReader::lenient(text.as_bytes());
    let jobs: Vec<SwfJob> = reader.by_ref().map(|r| r.unwrap()).collect();
    assert_eq!(
        jobs.iter().map(|j| j.job_id).collect::<Vec<_>>(),
        vec![1, 3, 6, 9],
        "surviving jobs"
    );
    assert_eq!(reader.parsed(), 4);
    let skips = reader.skip_report();
    assert_eq!(skips.count(SkipReason::Malformed), 2);
    assert_eq!(skips.count(SkipReason::MissingProcessors), 1);
    assert_eq!(skips.count(SkipReason::MissingRuntime), 1);
    assert_eq!(skips.count(SkipReason::CancelledBeforeStart), 1);
    assert_eq!(skips.total(), 5);
    assert_eq!(skips.example_lines(SkipReason::Malformed), &[7, 12]);
    assert_eq!(skips.example_lines(SkipReason::MissingProcessors), &[9]);
    assert_eq!(skips.example_lines(SkipReason::MissingRuntime), &[10]);
    assert_eq!(skips.example_lines(SkipReason::CancelledBeforeStart), &[11]);
    // Failed jobs (status 0) replay: they consumed their recorded time.
    assert!(jobs.iter().any(|j| j.status == 0), "failed job 6 replays");
    // Cancelled-but-ran jobs (status 5, runtime > 0) also replay.
    assert!(
        jobs.iter().any(|j| j.job_id == 9 && j.status == 5),
        "cancelled job with recorded runtime replays"
    );
    // Job 3's missing runtime is substituted by its request.
    assert_eq!(reader.runtime_substituted(), 1);
    assert_eq!(jobs.iter().find(|j| j.job_id == 3).unwrap().runtime, 1800.0);
    // Think-time/dependency columns survive on job 9.
    let j9 = jobs.iter().find(|j| j.job_id == 9).unwrap();
    assert_eq!(j9.preceding_job, Some(6));
    assert_eq!(j9.think_time, Some(120.0));

    // The strict parser refuses the same file at its first bad line.
    let err = parse_swf(&text).expect_err("strict must reject");
    assert!(err.to_string().contains("line 7"), "{err}");

    // The rendered report names reasons and line numbers.
    let rendered = skips.to_string();
    assert!(
        rendered.contains("malformed: 2 (lines 7, 12)"),
        "{rendered}"
    );
    assert!(
        rendered.contains("cancelled_before_start: 1 (line 11)"),
        "{rendered}"
    );
}

/// `-1` sentinel handling on the happy path: allocated processors fall
/// back to requested, missing requested time stays `None`, and the
/// optional trailing columns tolerate truncated 11-field records.
#[test]
fn sentinel_fixture_fields_resolve_per_pwa_conventions() {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let text = std::fs::read_to_string(dir.join("sentinels.swf")).unwrap();
    let jobs = parse_swf(&text).unwrap();
    assert_eq!(jobs.len(), 3);
    // Job 1: allocated -1 → requested 32.
    assert_eq!(jobs[0].procs, 32);
    // Job 2: truncated to the 11 required fields — optional columns None.
    assert_eq!(jobs[1].preceding_job, None);
    assert_eq!(jobs[1].think_time, None);
    assert_eq!(jobs[1].requested_time, None);
    // Job 3: full 18 columns with a dependency.
    assert_eq!(jobs[2].preceding_job, Some(1));
    assert_eq!(jobs[2].think_time, Some(30.0));
}

/// The fixture headers follow the PWA conventions (`; Field: value`
/// preamble, 18-field records); the parser must skip all of it and read
/// the jobs.
#[test]
fn parses_archive_style_header_fixtures() {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let expected = [
        ("cluster-a.swf", 4),
        ("cluster-b.swf", 3),
        ("cluster-c.swf", 2),
    ];
    for (name, jobs) in expected {
        let text = std::fs::read_to_string(dir.join(name)).unwrap();
        let parsed = parse_swf(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(parsed.len(), jobs, "{name}");
        for job in &parsed {
            assert!(
                job.procs >= 1,
                "{name}: job {} has no processors",
                job.job_id
            );
            assert!(job.runtime >= 0.0);
        }
    }
}
