//! Property tests for the malleability-injection model.
//!
//! The three guarantees the replay pipeline leans on, each checked over
//! arbitrary seeded traces rather than hand-picked examples:
//!
//! 1. fraction 0 ⇒ the converted workload is *equal* to the plain rigid
//!    conversion (the CLI-level fingerprint identity reduces to this);
//! 2. the injected job set is a pure function of `(seed, fractions)` and
//!    each job's id — unchanged under reordering and subsetting of the
//!    trace;
//! 3. every injected size range contains the job's original recorded
//!    size, and the workload as a whole validates against the derived
//!    platform.

use elastisim_workload::{
    convert_stream, parse_swf, to_swf, validate_workload, InjectedClass, InjectionConfig, JobClass,
    ScalingModel, SwfJob,
};
use proptest::prelude::*;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A seeded trace of well-formed records with distinct ids.
fn arbitrary_trace(rng: &mut Rng, max_jobs: u64) -> Vec<SwfJob> {
    let mut next_id = 0;
    (0..1 + rng.below(max_jobs))
        .map(|_| SwfJob {
            job_id: {
                next_id += 1 + rng.below(5);
                next_id
            },
            submit: rng.below(100_000) as f64,
            runtime: rng.below(40_000) as f64,
            procs: 1 + rng.below(512) as u32,
            requested_time: (rng.below(2) == 0).then(|| (1 + rng.below(80_000)) as f64),
            status: 1,
            preceding_job: None,
            think_time: None,
        })
        .collect()
}

fn cfg(seed: u64, malleable: f64, moldable: f64) -> InjectionConfig {
    InjectionConfig {
        seed,
        malleable_frac: malleable,
        moldable_frac: moldable,
        scaling: ScalingModel::Linear,
        platform_nodes: None,
    }
}

proptest! {
    /// Fraction 0 is the identity: the streamed conversion with no
    /// injection equals mapping `to_job_spec` over the strict parse.
    #[test]
    fn frac_zero_is_the_rigid_conversion(seed in any::<u64>()) {
        let mut rng = Rng(seed);
        let trace = to_swf(&arbitrary_trace(&mut rng, 60));
        let (jobs, stats) =
            convert_stream(trace.as_bytes(), 2e12, 1, &cfg(seed, 0.0, 0.0)).unwrap();
        let rigid: Vec<_> = parse_swf(&trace)
            .unwrap()
            .iter()
            .map(|j| j.to_job_spec(2e12, 1))
            .collect();
        prop_assert_eq!(jobs, rigid);
        prop_assert_eq!(stats.injected(), 0);
        prop_assert_eq!(stats.rigid, stats.parsed);
    }

    /// Injection decisions commute with trace order and subsetting: the
    /// classes assigned to surviving jobs are identical when the trace is
    /// reversed and when an arbitrary subset of other jobs is removed.
    #[test]
    fn injected_set_is_order_and_subset_independent(
        seed in any::<u64>(),
        inj_seed in any::<u64>(),
    ) {
        let mut rng = Rng(seed);
        let records = arbitrary_trace(&mut rng, 60);
        let c = cfg(inj_seed, 0.25, 0.25);
        let classes = |records: &[SwfJob]| -> Vec<(u64, JobClass)> {
            let (jobs, _) =
                convert_stream(to_swf(records).as_bytes(), 2e12, 1, &c).unwrap();
            let mut v: Vec<(u64, JobClass)> =
                jobs.iter().map(|j| (j.id.0, j.class)).collect();
            v.sort_by_key(|p| p.0);
            v
        };
        let forward = classes(&records);
        let reversed: Vec<SwfJob> = records.iter().rev().copied().collect();
        prop_assert_eq!(&forward, &classes(&reversed), "order must not matter");
        let subset: Vec<SwfJob> = records.iter().step_by(2).copied().collect();
        let sub_classes = classes(&subset);
        for pair in &sub_classes {
            prop_assert!(
                forward.contains(pair),
                "seed {}: job {} changed class when the trace was subset",
                seed, pair.0
            );
        }
        // And the per-id decision matches the public classifier.
        for (id, class) in &forward {
            let expected = match c.classify(*id) {
                InjectedClass::Rigid => JobClass::Rigid,
                InjectedClass::Moldable => JobClass::Moldable,
                InjectedClass::Malleable => JobClass::Malleable,
            };
            prop_assert_eq!(*class, expected);
        }
    }

    /// Every injected range brackets the original size, and the converted
    /// workload validates on the platform the stats derive.
    #[test]
    fn ranges_contain_original_size_and_workload_validates(
        seed in any::<u64>(),
        malleable in 0.0f64..=1.0,
    ) {
        let mut rng = Rng(seed);
        let records = arbitrary_trace(&mut rng, 60);
        let moldable = (1.0 - malleable) / 2.0;
        let c = cfg(seed, malleable, moldable);
        let (jobs, stats) =
            convert_stream(to_swf(&records).as_bytes(), 2e12, 1, &c).unwrap();
        let platform = stats.platform_nodes(&c, 1);
        for (spec, record) in jobs.iter().zip(&records) {
            prop_assert_eq!(spec.id.0, record.job_id);
            let orig = record.nodes(1);
            prop_assert!(
                spec.min_nodes <= orig && orig <= spec.max_nodes,
                "seed {}: job {} range {}..{} excludes original {}",
                seed, record.job_id, spec.min_nodes, spec.max_nodes, orig
            );
            prop_assert!(spec.max_nodes <= platform);
        }
        validate_workload(&jobs, platform as usize)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        prop_assert_eq!(
            stats.rigid + stats.injected(),
            stats.parsed,
            "class counts partition the parsed jobs"
        );
    }
}
