#![warn(missing_docs)]

//! # elastisim-workload — jobs, applications, and workload generation
//!
//! The workload half of the ElastiSim model:
//!
//! * [`JobSpec`] — a batch job in one of the four Feitelson–Rudolph classes
//!   (rigid, moldable, malleable, evolving), with its node-count
//!   constraints, submit time, walltime limit, and application model.
//! * [`ApplicationModel`] — what the job *does*: a list of [`Phase`]s, each
//!   iterating a list of [`Task`]s (compute, communication patterns, PFS or
//!   burst-buffer I/O, delays). Task loads are [`PerfExpr`] performance
//!   models over `num_nodes`, so work follows reconfigurations.
//! * [`WorkloadConfig`] — seeded synthetic workload generation with the knobs
//!   the reproduced experiments sweep (arrival rate, size distribution,
//!   malleable share).
//! * [`parse_swf`] — a reader/writer for the Standard Workload Format, so real
//!   traces can be replayed as rigid workloads.
//!
//! ```
//! use elastisim_workload::{AppTemplate, WorkloadConfig};
//!
//! let cfg = WorkloadConfig::new(100).with_malleable_fraction(0.5).with_seed(7);
//! let jobs = cfg.generate();
//! assert_eq!(jobs.len(), 100);
//! ```

mod app;
mod dist;
mod expr_serde;
mod generator;
mod inject;
mod job;
mod swf;
mod task;

pub use app::{ApplicationModel, Phase};
pub use dist::{Distribution, Sampler};
pub use expr_serde::PerfExpr;
pub use generator::ClassMix;
pub use generator::{AppTemplate, ArrivalProcess, SizeDistribution, WorkloadConfig};
pub use inject::{
    convert_stream, injected_range, InjectedClass, InjectionConfig, ReplayStats, ScalingModel,
};
pub use job::{validate_workload, JobClass, JobId, JobSpec, WorkloadError};
pub use swf::{
    parse_swf, to_swf, SkipReason, SkipReport, SwfHeader, SwfJob, SwfReader, SWF_STATUS_CANCELLED,
    SWF_STATUS_COMPLETED, SWF_STATUS_FAILED,
};
pub use task::{CommPattern, ComputeTarget, IoTarget, Task, TaskKind};
