//! Batch jobs and their elasticity classes.

use serde::{Deserialize, Serialize};

use crate::app::ApplicationModel;

/// Unique job identifier within a workload.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// The Feitelson–Rudolph classification the paper's title refers to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum JobClass {
    /// Fixed node count chosen by the user.
    Rigid,
    /// Node count chosen by the scheduler at start, fixed afterwards.
    Moldable,
    /// Node count changed by the *scheduler* at scheduling points.
    Malleable,
    /// Node count changed on the *application's* request at phase entry.
    Evolving,
}

impl JobClass {
    /// Whether the job can change size after it started.
    pub fn is_elastic(self) -> bool {
        matches!(self, JobClass::Malleable | JobClass::Evolving)
    }

    /// Whether the scheduler picks the initial node count.
    pub fn scheduler_picks_size(self) -> bool {
        matches!(self, JobClass::Moldable | JobClass::Malleable)
    }
}

impl std::fmt::Display for JobClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            JobClass::Rigid => "rigid",
            JobClass::Moldable => "moldable",
            JobClass::Malleable => "malleable",
            JobClass::Evolving => "evolving",
        };
        f.write_str(s)
    }
}

/// Validation errors for job specifications.
#[derive(Debug, PartialEq)]
pub enum WorkloadError {
    /// A structural rule was violated; the string names it.
    Invalid(String),
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::Invalid(msg) => write!(f, "invalid job: {msg}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// A submitted batch job.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique id.
    pub id: JobId,
    /// Elasticity class.
    pub class: JobClass,
    /// Submission time, seconds since simulation start.
    pub submit_time: f64,
    /// Smallest allocation the job can run on.
    pub min_nodes: u32,
    /// Largest allocation the job can use. For rigid jobs this equals
    /// `min_nodes`.
    pub max_nodes: u32,
    /// Requested walltime limit in seconds (`None` = unlimited). Jobs
    /// exceeding it are killed, as a real batch system would.
    #[serde(default)]
    pub walltime: Option<f64>,
    /// Jobs that must *complete successfully* before this one becomes
    /// eligible to start (`afterok` semantics: if a dependency is killed,
    /// this job is cancelled).
    #[serde(default)]
    pub dependencies: Vec<JobId>,
    /// What the job executes.
    pub app: ApplicationModel,
}

impl JobSpec {
    /// A rigid job on exactly `nodes` nodes.
    pub fn rigid(id: u64, submit_time: f64, nodes: u32, app: ApplicationModel) -> JobSpec {
        JobSpec {
            id: JobId(id),
            class: JobClass::Rigid,
            submit_time,
            min_nodes: nodes,
            max_nodes: nodes,
            walltime: None,
            dependencies: Vec::new(),
            app,
        }
    }

    /// A moldable job runnable on `min..=max` nodes.
    pub fn moldable(
        id: u64,
        submit_time: f64,
        min: u32,
        max: u32,
        app: ApplicationModel,
    ) -> JobSpec {
        JobSpec {
            id: JobId(id),
            class: JobClass::Moldable,
            submit_time,
            min_nodes: min,
            max_nodes: max,
            walltime: None,
            dependencies: Vec::new(),
            app,
        }
    }

    /// A malleable job resizable within `min..=max` nodes.
    pub fn malleable(
        id: u64,
        submit_time: f64,
        min: u32,
        max: u32,
        app: ApplicationModel,
    ) -> JobSpec {
        JobSpec {
            id: JobId(id),
            class: JobClass::Malleable,
            submit_time,
            min_nodes: min,
            max_nodes: max,
            walltime: None,
            dependencies: Vec::new(),
            app,
        }
    }

    /// An evolving job starting at `start` nodes, bounded by `min..=max`.
    pub fn evolving(
        id: u64,
        submit_time: f64,
        start: u32,
        min: u32,
        max: u32,
        app: ApplicationModel,
    ) -> JobSpec {
        // Evolving jobs carry their start size via min_nodes of the first
        // allocation; we store it by clamping: the simulator starts them at
        // `start`, recorded here as an evolving request on phase 0 if the
        // app does not set one.
        let mut app = app;
        if let Some(first) = app.phases.first_mut() {
            if first.evolving_request.is_none() {
                first.evolving_request = Some(start);
            }
        }
        JobSpec {
            id: JobId(id),
            class: JobClass::Evolving,
            submit_time,
            min_nodes: min,
            max_nodes: max,
            walltime: None,
            dependencies: Vec::new(),
            app,
        }
    }

    /// Sets a walltime limit.
    pub fn with_walltime(mut self, seconds: f64) -> JobSpec {
        self.walltime = Some(seconds);
        self
    }

    /// Adds `afterok` dependencies: this job starts only once all of them
    /// completed successfully.
    pub fn with_dependencies(mut self, deps: impl IntoIterator<Item = u64>) -> JobSpec {
        self.dependencies.extend(deps.into_iter().map(JobId));
        self
    }

    /// The initial node count for classes where the *user* fixes it
    /// (rigid, evolving); `None` where the scheduler decides.
    pub fn user_fixed_start(&self) -> Option<u32> {
        match self.class {
            JobClass::Rigid => Some(self.min_nodes),
            JobClass::Evolving => Some(
                self.app
                    .phases
                    .first()
                    .and_then(|p| p.evolving_request)
                    .unwrap_or(self.min_nodes),
            ),
            _ => None,
        }
    }

    /// Structural validation against a platform size.
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0)` also rejects NaN
    pub fn validate(&self, platform_nodes: usize) -> Result<(), WorkloadError> {
        if self.min_nodes == 0 {
            return Err(WorkloadError::Invalid(format!(
                "{}: min_nodes is 0",
                self.id
            )));
        }
        if self.min_nodes > self.max_nodes {
            return Err(WorkloadError::Invalid(format!(
                "{}: min_nodes {} > max_nodes {}",
                self.id, self.min_nodes, self.max_nodes
            )));
        }
        if self.max_nodes as usize > platform_nodes {
            return Err(WorkloadError::Invalid(format!(
                "{}: max_nodes {} exceeds platform size {}",
                self.id, self.max_nodes, platform_nodes
            )));
        }
        if self.class == JobClass::Rigid && self.min_nodes != self.max_nodes {
            return Err(WorkloadError::Invalid(format!(
                "{}: rigid job must have min_nodes == max_nodes",
                self.id
            )));
        }
        if self.submit_time < 0.0 || !self.submit_time.is_finite() {
            return Err(WorkloadError::Invalid(format!(
                "{}: bad submit time {}",
                self.id, self.submit_time
            )));
        }
        if let Some(w) = self.walltime {
            if !(w > 0.0) {
                return Err(WorkloadError::Invalid(format!(
                    "{}: walltime must be positive",
                    self.id
                )));
            }
        }
        if self.app.phases.is_empty() {
            return Err(WorkloadError::Invalid(format!(
                "{}: empty application",
                self.id
            )));
        }
        // Every performance model must evaluate over the whole node range.
        for phase in &self.app.phases {
            if let Some(req) = phase.evolving_request {
                if req < self.min_nodes || req > self.max_nodes {
                    return Err(WorkloadError::Invalid(format!(
                        "{}: evolving request {} outside [{}, {}]",
                        self.id, req, self.min_nodes, self.max_nodes
                    )));
                }
            }
            for task in &phase.tasks {
                for expr in task.exprs() {
                    for n in [self.min_nodes, self.max_nodes] {
                        if let Err(e) = expr.eval_nodes(n as usize) {
                            return Err(WorkloadError::Invalid(format!(
                                "{}: task `{}` model fails at {} nodes: {e}",
                                self.id, task.name, n
                            )));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Validates a whole workload: per-job rules, unique ids, and a sound
/// dependency graph (existing targets, no self-loops, no cycles).
pub fn validate_workload(jobs: &[JobSpec], platform_nodes: usize) -> Result<(), WorkloadError> {
    let mut seen = std::collections::HashSet::new();
    for job in jobs {
        job.validate(platform_nodes)?;
        if !seen.insert(job.id) {
            return Err(WorkloadError::Invalid(format!("duplicate id {}", job.id)));
        }
    }
    // Dependency targets exist and are not self-references.
    for job in jobs {
        for dep in &job.dependencies {
            if *dep == job.id {
                return Err(WorkloadError::Invalid(format!(
                    "{}: depends on itself",
                    job.id
                )));
            }
            if !seen.contains(dep) {
                return Err(WorkloadError::Invalid(format!(
                    "{}: depends on unknown {dep}",
                    job.id
                )));
            }
        }
    }
    // Cycle detection: Kahn's algorithm over the dependency edges.
    let mut indegree: std::collections::HashMap<JobId, usize> =
        jobs.iter().map(|j| (j.id, j.dependencies.len())).collect();
    let mut dependents: std::collections::HashMap<JobId, Vec<JobId>> =
        std::collections::HashMap::new();
    for job in jobs {
        for dep in &job.dependencies {
            dependents.entry(*dep).or_default().push(job.id);
        }
    }
    let mut ready: Vec<JobId> = indegree
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&id, _)| id)
        .collect();
    let mut resolved = 0;
    while let Some(id) = ready.pop() {
        resolved += 1;
        for dependent in dependents.get(&id).into_iter().flatten() {
            let d = indegree.get_mut(dependent).expect("known job");
            *d -= 1;
            if *d == 0 {
                ready.push(*dependent);
            }
        }
    }
    if resolved != jobs.len() {
        return Err(WorkloadError::Invalid(
            "dependency graph contains a cycle".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::Phase;
    use crate::expr_serde::PerfExpr;
    use crate::task::Task;

    fn app() -> ApplicationModel {
        ApplicationModel::new(vec![Phase::once(
            "p",
            vec![Task::compute(
                "c",
                PerfExpr::parse("1e9 / num_nodes").unwrap(),
            )],
        )])
    }

    #[test]
    fn constructors_set_classes() {
        assert_eq!(JobSpec::rigid(1, 0.0, 4, app()).class, JobClass::Rigid);
        assert_eq!(
            JobSpec::moldable(1, 0.0, 2, 8, app()).class,
            JobClass::Moldable
        );
        assert_eq!(
            JobSpec::malleable(1, 0.0, 2, 8, app()).class,
            JobClass::Malleable
        );
        assert_eq!(
            JobSpec::evolving(1, 0.0, 4, 2, 8, app()).class,
            JobClass::Evolving
        );
    }

    #[test]
    fn rigid_range_is_degenerate() {
        let j = JobSpec::rigid(1, 0.0, 4, app());
        assert_eq!((j.min_nodes, j.max_nodes), (4, 4));
        assert_eq!(j.user_fixed_start(), Some(4));
    }

    #[test]
    fn evolving_start_recorded_in_first_phase() {
        let j = JobSpec::evolving(1, 0.0, 4, 2, 8, app());
        assert_eq!(j.user_fixed_start(), Some(4));
    }

    #[test]
    fn validation_catches_bad_ranges() {
        let mut j = JobSpec::malleable(1, 0.0, 8, 4, app());
        assert!(j.validate(128).is_err());
        j.min_nodes = 0;
        assert!(j.validate(128).is_err());
        let j = JobSpec::malleable(1, 0.0, 2, 256, app());
        assert!(j.validate(128).is_err());
        let j = JobSpec::malleable(1, 0.0, 2, 8, app());
        assert!(j.validate(128).is_ok());
    }

    #[test]
    fn validation_catches_empty_app() {
        let j = JobSpec::rigid(1, 0.0, 4, ApplicationModel::default());
        assert!(j.validate(128).is_err());
    }

    #[test]
    fn validation_catches_unevaluable_model() {
        let app = ApplicationModel::new(vec![Phase::once(
            "p",
            vec![Task::compute(
                "c",
                PerfExpr::parse("1e9 / unknown_var").unwrap(),
            )],
        )]);
        let j = JobSpec::rigid(1, 0.0, 4, app);
        assert!(j.validate(128).is_err());
    }

    #[test]
    fn validation_catches_evolving_request_out_of_range() {
        let mut a = app();
        a.phases[0].evolving_request = Some(64);
        let j = JobSpec {
            id: JobId(1),
            class: JobClass::Evolving,
            submit_time: 0.0,
            min_nodes: 2,
            max_nodes: 8,
            walltime: None,
            dependencies: Vec::new(),
            app: a,
        };
        assert!(j.validate(128).is_err());
    }

    #[test]
    fn duplicate_ids_rejected() {
        let jobs = vec![
            JobSpec::rigid(1, 0.0, 4, app()),
            JobSpec::rigid(1, 1.0, 2, app()),
        ];
        assert!(validate_workload(&jobs, 128).is_err());
    }

    #[test]
    fn class_predicates() {
        assert!(JobClass::Malleable.is_elastic());
        assert!(JobClass::Evolving.is_elastic());
        assert!(!JobClass::Rigid.is_elastic());
        assert!(JobClass::Moldable.scheduler_picks_size());
        assert!(!JobClass::Evolving.scheduler_picks_size());
    }

    #[test]
    fn serde_roundtrip() {
        let j = JobSpec::malleable(3, 12.5, 2, 16, app()).with_walltime(3600.0);
        let json = serde_json::to_string(&j).unwrap();
        let back: JobSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(j, back);
    }
}

#[cfg(test)]
mod dependency_tests {
    use super::*;
    use crate::app::Phase;
    use crate::expr_serde::PerfExpr;
    use crate::task::Task;

    fn app() -> ApplicationModel {
        ApplicationModel::new(vec![Phase::once(
            "p",
            vec![Task::compute("c", PerfExpr::constant(1e9))],
        )])
    }

    #[test]
    fn chain_validates() {
        let jobs = vec![
            JobSpec::rigid(0, 0.0, 1, app()),
            JobSpec::rigid(1, 0.0, 1, app()).with_dependencies([0]),
            JobSpec::rigid(2, 0.0, 1, app()).with_dependencies([1]),
        ];
        validate_workload(&jobs, 4).unwrap();
    }

    #[test]
    fn self_dependency_rejected() {
        let jobs = vec![JobSpec::rigid(0, 0.0, 1, app()).with_dependencies([0])];
        assert!(validate_workload(&jobs, 4).is_err());
    }

    #[test]
    fn unknown_dependency_rejected() {
        let jobs = vec![JobSpec::rigid(0, 0.0, 1, app()).with_dependencies([99])];
        assert!(validate_workload(&jobs, 4).is_err());
    }

    #[test]
    fn cycle_rejected() {
        let jobs = vec![
            JobSpec::rigid(0, 0.0, 1, app()).with_dependencies([2]),
            JobSpec::rigid(1, 0.0, 1, app()).with_dependencies([0]),
            JobSpec::rigid(2, 0.0, 1, app()).with_dependencies([1]),
        ];
        let err = validate_workload(&jobs, 4).unwrap_err();
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn diamond_validates() {
        let jobs = vec![
            JobSpec::rigid(0, 0.0, 1, app()),
            JobSpec::rigid(1, 0.0, 1, app()).with_dependencies([0]),
            JobSpec::rigid(2, 0.0, 1, app()).with_dependencies([0]),
            JobSpec::rigid(3, 0.0, 1, app()).with_dependencies([1, 2]),
        ];
        validate_workload(&jobs, 4).unwrap();
    }

    #[test]
    fn dependencies_serde_roundtrip_and_default() {
        let j = JobSpec::rigid(1, 0.0, 1, app()).with_dependencies([0, 2]);
        let json = serde_json::to_string(&j).unwrap();
        let back: JobSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(j, back);
        // Old JSON without the field still parses.
        let old = json.replace(r#""dependencies":[{"0":0}"#, "");
        let _ = old; // (layout differs; just check default path)
        let no_dep: JobSpec = serde_json::from_str(
            &serde_json::to_string(&JobSpec::rigid(2, 0.0, 1, app())).unwrap(),
        )
        .unwrap();
        assert!(no_dep.dependencies.is_empty());
    }
}
