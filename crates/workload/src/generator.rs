//! Seeded synthetic workload generation.
//!
//! Generates the workloads the reconstructed experiments sweep: a stream of
//! phase-structured jobs with configurable arrival process, size
//! distribution, runtime distribution, and elasticity-class mix (most
//! importantly the *malleable share*, the x-axis of experiment R-F2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::app::{ApplicationModel, Phase};
use crate::dist::Distribution;
use crate::expr_serde::PerfExpr;
use crate::job::{JobClass, JobSpec};
use crate::task::{CommPattern, IoTarget, Task};

/// When jobs arrive.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
#[serde(tag = "process", rename_all = "snake_case")]
pub enum ArrivalProcess {
    /// Poisson process with the given mean inter-arrival time (seconds).
    Poisson {
        /// Mean seconds between submissions.
        mean_interarrival: f64,
    },
    /// Fixed interval between submissions.
    Periodic {
        /// Seconds between submissions.
        interval: f64,
    },
    /// Everything submitted at t=0 (a drained-queue experiment).
    AllAtOnce,
}

/// How requested node counts are drawn.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
#[serde(tag = "sizes", rename_all = "snake_case")]
pub enum SizeDistribution {
    /// Uniform over the powers of two in `[min, max]` — the classic HPC
    /// allocation-size shape.
    PowersOfTwo {
        /// Smallest size (rounded up to a power of two).
        min: u32,
        /// Largest size (rounded down to a power of two).
        max: u32,
    },
    /// Uniform over `[min, max]`.
    Uniform {
        /// Smallest size.
        min: u32,
        /// Largest size.
        max: u32,
    },
    /// Every job requests the same size.
    Fixed {
        /// The size.
        nodes: u32,
    },
}

impl SizeDistribution {
    fn sample(&self, rng: &mut StdRng) -> u32 {
        match *self {
            SizeDistribution::PowersOfTwo { min, max } => {
                let lo = min.max(1).next_power_of_two().trailing_zeros();
                let hi_pow = 31 - max.max(1).leading_zeros(); // floor(log2)
                let hi = hi_pow.max(lo);
                1 << rng.gen_range(lo..=hi)
            }
            SizeDistribution::Uniform { min, max } => rng.gen_range(min..=max.max(min)),
            SizeDistribution::Fixed { nodes } => nodes,
        }
    }
}

/// Shape of the generated applications.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct AppTemplate {
    /// Iteration count of the main solver phase.
    pub iterations: Distribution,
    /// Reference per-node compute speed used to translate target runtimes
    /// into flops (flop/s); should match the platform's node speed.
    pub node_flops: f64,
    /// Bytes of halo exchange per node per iteration.
    pub comm_bytes_per_node: f64,
    /// Bytes read from the PFS at job start (input staging), per node.
    pub input_bytes_per_node: f64,
    /// Bytes written per checkpoint, per node.
    pub checkpoint_bytes_per_node: f64,
    /// A checkpoint phase is inserted every `checkpoint_every` iterations
    /// (0 = never).
    pub checkpoint_every: u32,
    /// Storage tier for checkpoints.
    pub checkpoint_target: IoTarget,
    /// Fraction of the compute load offloaded to GPUs, in `[0, 1]`. On
    /// CPU-only platforms GPU tasks fall back to the CPU resource; note
    /// that the offloaded flops are *not* rescaled by the CPU/GPU speed
    /// ratio — the template expresses where the work runs, the platform
    /// decides how fast.
    pub gpu_offload: f64,
}

impl Default for AppTemplate {
    fn default() -> Self {
        AppTemplate {
            iterations: Distribution::Uniform { lo: 10.0, hi: 50.0 },
            node_flops: 2.0e12,
            comm_bytes_per_node: 64.0 * 1024.0 * 1024.0,
            input_bytes_per_node: 2.0e9,
            checkpoint_bytes_per_node: 4.0e9,
            checkpoint_every: 10,
            checkpoint_target: IoTarget::Pfs,
            gpu_offload: 0.0,
        }
    }
}

impl AppTemplate {
    /// Builds an application whose *ideal* runtime on `ref_nodes` nodes is
    /// `runtime` seconds, structured as input staging, an iterated
    /// compute+halo phase with periodic checkpoints, and a final write.
    ///
    /// The compute load uses a strong-scaling model `W / num_nodes`, so the
    /// same app runs faster on more nodes — the property malleable
    /// scheduling exploits.
    pub fn instantiate(&self, rng: &mut StdRng, runtime: f64, ref_nodes: u32) -> ApplicationModel {
        let iters = (self.iterations.sample(rng).round() as u32).max(1);
        // Total flops such that compute time at ref_nodes ≈ runtime; loads
        // are per node, so divide the per-iteration total by num_nodes.
        let total_flops = runtime * self.node_flops * ref_nodes as f64;
        let flops_per_iter = total_flops / iters as f64;
        let gpu_share = self.gpu_offload.clamp(0.0, 1.0);
        let cpu_flops = flops_per_iter * (1.0 - gpu_share);
        let gpu_flops = flops_per_iter * gpu_share;
        let compute =
            PerfExpr::parse(&format!("{cpu_flops:e} / num_nodes")).expect("generated model");
        let gpu_compute = (gpu_share > 0.0).then(|| {
            PerfExpr::parse(&format!("{gpu_flops:e} / num_nodes")).expect("generated model")
        });
        let halo = PerfExpr::constant(self.comm_bytes_per_node);

        let mut phases = Vec::new();
        if self.input_bytes_per_node > 0.0 {
            let input = PerfExpr::constant(self.input_bytes_per_node);
            phases.push(Phase::once(
                "stage-in",
                vec![Task::read("input", input, IoTarget::Pfs)],
            ));
        }

        let mut solver_tasks = vec![Task::compute("solve", compute)];
        if let Some(gpu) = gpu_compute {
            solver_tasks.push(Task::gpu_compute("solve-gpu", gpu));
        }
        solver_tasks.push(Task::comm("halo", halo, CommPattern::Ring));
        if self.checkpoint_every == 0 || self.checkpoint_every >= iters {
            phases.push(Phase::repeated("solver", iters, solver_tasks));
        } else {
            // Segments of `checkpoint_every` iterations, each followed by a
            // checkpoint write.
            let ckpt = PerfExpr::constant(self.checkpoint_bytes_per_node);
            let mut left = iters;
            let mut seg = 0;
            while left > 0 {
                let k = left.min(self.checkpoint_every);
                phases.push(Phase::repeated(
                    format!("solver-{seg}"),
                    k,
                    solver_tasks.clone(),
                ));
                phases.push(Phase::once(
                    format!("checkpoint-{seg}"),
                    vec![Task::write("ckpt", ckpt.clone(), self.checkpoint_target)],
                ));
                left -= k;
                seg += 1;
            }
        }
        ApplicationModel::new(phases)
    }
}

/// Weights of the four job classes in the generated mix.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct ClassMix {
    /// Weight of rigid jobs.
    pub rigid: f64,
    /// Weight of moldable jobs.
    pub moldable: f64,
    /// Weight of malleable jobs.
    pub malleable: f64,
    /// Weight of evolving jobs.
    pub evolving: f64,
}

impl ClassMix {
    fn draw(&self, rng: &mut StdRng) -> JobClass {
        let total = self.rigid + self.moldable + self.malleable + self.evolving;
        assert!(total > 0.0, "class mix has zero total weight");
        let x: f64 = rng.gen_range(0.0..total);
        if x < self.rigid {
            JobClass::Rigid
        } else if x < self.rigid + self.moldable {
            JobClass::Moldable
        } else if x < self.rigid + self.moldable + self.malleable {
            JobClass::Malleable
        } else {
            JobClass::Evolving
        }
    }
}

/// Full generator configuration.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of jobs to generate.
    pub num_jobs: usize,
    /// RNG seed; equal seeds give identical workloads.
    pub seed: u64,
    /// Arrival process.
    pub arrival: ArrivalProcess,
    /// Requested-size distribution.
    pub size: SizeDistribution,
    /// Target runtime (seconds at the requested size).
    pub runtime: Distribution,
    /// Class mix.
    pub mix: ClassMix,
    /// Application shape.
    pub app: AppTemplate,
    /// Platform size cap for elastic ranges.
    pub platform_nodes: u32,
    /// Walltime limit factor: limit = factor × target runtime (0 = no
    /// limit).
    pub walltime_factor: f64,
}

impl WorkloadConfig {
    /// A sensible default configuration: `num_jobs` jobs, Poisson arrivals
    /// loading a 128-node machine to roughly 85 %, power-of-two sizes 1–32,
    /// lognormal runtimes, all rigid.
    pub fn new(num_jobs: usize) -> Self {
        WorkloadConfig {
            num_jobs,
            seed: 1,
            // Mean size ~9.6 nodes (powers of two 1..32), mean runtime
            // ~1100 s ⇒ at 85 % of 128 nodes, one job every ~97 s.
            arrival: ArrivalProcess::Poisson {
                mean_interarrival: 97.0,
            },
            size: SizeDistribution::PowersOfTwo { min: 1, max: 32 },
            runtime: Distribution::LogNormal {
                mu: 6.8,
                sigma: 0.6,
            },
            mix: ClassMix {
                rigid: 1.0,
                moldable: 0.0,
                malleable: 0.0,
                evolving: 0.0,
            },
            app: AppTemplate::default(),
            platform_nodes: 128,
            walltime_factor: 0.0,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the class mix with `f` malleable / `1-f` rigid.
    pub fn with_malleable_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f));
        self.mix = ClassMix {
            rigid: 1.0 - f,
            moldable: 0.0,
            malleable: f,
            evolving: 0.0,
        };
        self
    }

    /// Sets an arbitrary class mix.
    pub fn with_mix(mut self, mix: ClassMix) -> Self {
        self.mix = mix;
        self
    }

    /// Sets the arrival process.
    pub fn with_arrival(mut self, arrival: ArrivalProcess) -> Self {
        self.arrival = arrival;
        self
    }

    /// Sets the size distribution.
    pub fn with_sizes(mut self, size: SizeDistribution) -> Self {
        self.size = size;
        self
    }

    /// Sets the platform-size cap.
    pub fn with_platform_nodes(mut self, n: u32) -> Self {
        self.platform_nodes = n;
        self
    }

    /// Generates the workload, sorted by submit time, ids `0..num_jobs`.
    pub fn generate(&self) -> Vec<JobSpec> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut t = 0.0;
        let mut jobs = Vec::with_capacity(self.num_jobs);
        for id in 0..self.num_jobs as u64 {
            t += match self.arrival {
                ArrivalProcess::Poisson { mean_interarrival } => Distribution::Exponential {
                    mean: mean_interarrival,
                }
                .sample(&mut rng),
                ArrivalProcess::Periodic { interval } => interval,
                ArrivalProcess::AllAtOnce => 0.0,
            };
            let size = self.size.sample(&mut rng).clamp(1, self.platform_nodes);
            let runtime = self.runtime.sample(&mut rng).max(1.0);
            let class = self.mix.draw(&mut rng);
            let app = self.app.instantiate(&mut rng, runtime, size);
            let (min, max) = elastic_range(size, self.platform_nodes);
            let mut job = match class {
                JobClass::Rigid => JobSpec::rigid(id, t, size, app),
                JobClass::Moldable => JobSpec::moldable(id, t, min, max, app),
                JobClass::Malleable => JobSpec::malleable(id, t, min, max, app),
                JobClass::Evolving => {
                    let mut app = app;
                    sprinkle_evolving_requests(&mut app, &mut rng, min, max);
                    JobSpec::evolving(id, t, size.clamp(min, max), min, max, app)
                }
            };
            if self.walltime_factor > 0.0 {
                // Walltime limits leave generous headroom: the runtime
                // target ignores communication, I/O, and contention.
                job = job.with_walltime(self.walltime_factor * runtime);
            }
            jobs.push(job);
        }
        jobs
    }

    /// Aggregate node-seconds of compute demand, for utilization reports.
    pub fn expected_load(&self) -> f64 {
        // mean size × mean runtime × jobs; approximate for reports only.
        let mean_size = match self.size {
            SizeDistribution::Fixed { nodes } => nodes as f64,
            SizeDistribution::Uniform { min, max } => (min + max) as f64 / 2.0,
            SizeDistribution::PowersOfTwo { min, max } => {
                let lo = min.max(1).next_power_of_two().trailing_zeros();
                let hi = 31 - max.max(1).leading_zeros();
                let powers: Vec<f64> = (lo..=hi.max(lo)).map(|p| (1u64 << p) as f64).collect();
                powers.iter().sum::<f64>() / powers.len() as f64
            }
        };
        mean_size * self.runtime.mean() * self.num_jobs as f64
    }
}

/// Elastic node range around a requested size: half to double, clamped.
fn elastic_range(size: u32, platform: u32) -> (u32, u32) {
    let min = (size / 2).max(1);
    let max = (size * 2).min(platform).max(min);
    (min, max)
}

/// Inserts evolving resource requests on some phases: the job asks for more
/// nodes on entering compute-heavy segments and releases them afterwards.
fn sprinkle_evolving_requests(app: &mut ApplicationModel, rng: &mut StdRng, min: u32, max: u32) {
    for phase in app.phases.iter_mut().skip(1) {
        if rng.gen_bool(0.5) {
            phase.evolving_request = Some(rng.gen_range(min..=max));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::validate_workload;

    #[test]
    fn generates_requested_count_sorted_by_submit() {
        let jobs = WorkloadConfig::new(50).with_seed(3).generate();
        assert_eq!(jobs.len(), 50);
        for w in jobs.windows(2) {
            assert!(w[0].submit_time <= w[1].submit_time);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = WorkloadConfig::new(20).with_seed(11).generate();
        let b = WorkloadConfig::new(20).with_seed(11).generate();
        assert_eq!(a, b);
        let c = WorkloadConfig::new(20).with_seed(12).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn generated_workloads_validate() {
        for frac in [0.0, 0.5, 1.0] {
            let jobs = WorkloadConfig::new(100)
                .with_malleable_fraction(frac)
                .with_seed(5)
                .generate();
            validate_workload(&jobs, 128).expect("generated workload must validate");
        }
    }

    #[test]
    fn malleable_fraction_respected() {
        let jobs = WorkloadConfig::new(400)
            .with_malleable_fraction(0.5)
            .generate();
        let malleable = jobs
            .iter()
            .filter(|j| j.class == JobClass::Malleable)
            .count();
        assert!((150..=250).contains(&malleable), "got {malleable}");
        assert!(jobs
            .iter()
            .all(|j| matches!(j.class, JobClass::Rigid | JobClass::Malleable)));
    }

    #[test]
    fn power_of_two_sizes() {
        let jobs = WorkloadConfig::new(200)
            .with_sizes(SizeDistribution::PowersOfTwo { min: 2, max: 16 })
            .generate();
        for j in &jobs {
            assert!(j.max_nodes.is_power_of_two() || j.class != JobClass::Rigid);
            if j.class == JobClass::Rigid {
                assert!((2..=16).contains(&j.min_nodes));
            }
        }
    }

    #[test]
    fn evolving_jobs_carry_requests() {
        let cfg = WorkloadConfig::new(50).with_mix(ClassMix {
            rigid: 0.0,
            moldable: 0.0,
            malleable: 0.0,
            evolving: 1.0,
        });
        let jobs = cfg.generate();
        assert!(jobs.iter().all(|j| j.class == JobClass::Evolving));
        // At least some phases beyond the first ask for resources.
        assert!(jobs.iter().any(|j| j
            .app
            .phases
            .iter()
            .skip(1)
            .any(|p| p.evolving_request.is_some())));
        validate_workload(&jobs, 128).unwrap();
    }

    #[test]
    fn all_at_once_submits_at_zero() {
        let jobs = WorkloadConfig::new(10)
            .with_arrival(ArrivalProcess::AllAtOnce)
            .generate();
        assert!(jobs.iter().all(|j| j.submit_time == 0.0));
    }

    #[test]
    fn walltime_factor_sets_limits() {
        let mut cfg = WorkloadConfig::new(10);
        cfg.walltime_factor = 3.0;
        let jobs = cfg.generate();
        assert!(jobs.iter().all(|j| j.walltime.is_some()));
    }

    #[test]
    fn elastic_range_clamps() {
        assert_eq!(elastic_range(1, 128), (1, 2));
        assert_eq!(elastic_range(8, 128), (4, 16));
        assert_eq!(elastic_range(100, 128), (50, 128));
    }

    #[test]
    fn template_runtime_scales_with_nodes() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = AppTemplate::default();
        let app = t.instantiate(&mut rng, 1000.0, 8);
        // Per-node compute flops at 8 nodes, summed over iterations, equal
        // 1000 s × node_flops — i.e. the job computes for 1000 s at its
        // reference size.
        let per_node: f64 = app
            .phases
            .iter()
            .flat_map(|p| p.tasks.iter().map(move |t| (p, t)))
            .filter_map(|(p, task)| match &task.kind {
                crate::task::TaskKind::Compute { flops, .. } => {
                    Some(flops.eval_nodes(8).unwrap() * p.iterations as f64)
                }
                _ => None,
            })
            .sum();
        let expected = 1000.0 * t.node_flops;
        assert!(
            (per_node - expected).abs() / expected < 1e-6,
            "per-node {per_node} vs {expected}"
        );
        // On 16 nodes each node has half the work: strong scaling.
        let at16: f64 = app
            .phases
            .iter()
            .flat_map(|p| p.tasks.iter().map(move |t| (p, t)))
            .filter_map(|(p, task)| match &task.kind {
                crate::task::TaskKind::Compute { flops, .. } => {
                    Some(flops.eval_nodes(16).unwrap() * p.iterations as f64)
                }
                _ => None,
            })
            .sum();
        assert!((at16 - expected / 2.0).abs() / expected < 1e-6);
    }

    #[test]
    fn gpu_offload_adds_gpu_tasks() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = AppTemplate {
            gpu_offload: 0.8,
            ..AppTemplate::default()
        };
        let app = t.instantiate(&mut rng, 100.0, 4);
        let mut cpu = 0.0;
        let mut gpu = 0.0;
        for phase in &app.phases {
            for task in &phase.tasks {
                if let crate::task::TaskKind::Compute { flops, target } = &task.kind {
                    let v = flops.eval_nodes(4).unwrap() * phase.iterations as f64;
                    match target {
                        crate::task::ComputeTarget::Cpu => cpu += v,
                        crate::task::ComputeTarget::Gpu => gpu += v,
                    }
                }
            }
        }
        assert!(gpu > 0.0);
        assert!(
            (gpu / (cpu + gpu) - 0.8).abs() < 1e-9,
            "offload share wrong"
        );
    }

    #[test]
    fn checkpoints_inserted_per_segment() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = AppTemplate {
            iterations: Distribution::Fixed { value: 25.0 },
            checkpoint_every: 10,
            ..AppTemplate::default()
        };
        let app = t.instantiate(&mut rng, 100.0, 4);
        let ckpts = app
            .phases
            .iter()
            .filter(|p| p.name.starts_with("checkpoint"))
            .count();
        assert_eq!(ckpts, 3, "25 iters / every 10 → 3 segments");
    }
}
