//! Tasks — the atoms of the application model.
//!
//! Tasks inside a phase run sequentially with barrier semantics between
//! them (the next task starts when every rank finished the previous one),
//! which matches the bulk-synchronous structure ElastiSim's application
//! model targets.

use serde::{Deserialize, Serialize};

use crate::expr_serde::PerfExpr;

/// Which engine executes a compute task.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ComputeTarget {
    /// The node's CPU resource.
    Cpu,
    /// The node's GPUs (work split evenly across them).
    Gpu,
}

/// Collective communication patterns. The pattern decides how the total
/// byte volume maps onto NIC and backbone resources.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum CommPattern {
    /// Every rank exchanges with every other rank; total volume crosses
    /// all NICs and stresses the backbone.
    AllToAll,
    /// Nearest-neighbor halo exchange; volume per node is constant.
    Ring,
    /// Rank 0 sends to all others (fan-out bound by root's NIC).
    Broadcast,
    /// All ranks send to rank 0 (fan-in bound by root's NIC).
    Gather,
}

/// Which storage tier an I/O task uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum IoTarget {
    /// The shared parallel file system.
    Pfs,
    /// Node-local burst buffers (falls back to the PFS on nodes without
    /// one).
    BurstBuffer,
}

/// The work a task performs. All loads are **per node**, given as
/// performance models over `num_nodes` — the ElastiSim convention (per-rank
/// payloads): a strong-scaling kernel is written `W / num_nodes`, a
/// constant-per-node halo exchange is just a constant.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum TaskKind {
    /// Each allocated node executes `flops` floating-point work; the task
    /// finishes when the slowest node does (barrier semantics).
    Compute {
        /// Work per node, flops.
        flops: PerfExpr,
        /// CPU or GPU execution.
        #[serde(default = "default_target")]
        target: ComputeTarget,
    },
    /// A collective in which each node sends `bytes`.
    Communication {
        /// Bytes sent per node.
        bytes: PerfExpr,
        /// The traffic pattern.
        pattern: CommPattern,
    },
    /// Each node reads `bytes` from a storage tier.
    Read {
        /// Bytes read per node.
        bytes: PerfExpr,
        /// Storage tier.
        target: IoTarget,
    },
    /// Each node writes `bytes` to a storage tier.
    Write {
        /// Bytes written per node.
        bytes: PerfExpr,
        /// Storage tier.
        target: IoTarget,
    },
    /// Idle for a fixed duration (ramp-up, license waits, ...).
    Delay {
        /// Seconds to idle.
        seconds: PerfExpr,
    },
}

fn default_target() -> ComputeTarget {
    ComputeTarget::Cpu
}

/// A named task.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Task {
    /// Label used in traces.
    pub name: String,
    /// What the task does.
    #[serde(flatten)]
    pub kind: TaskKind,
}

impl Task {
    /// A CPU compute task.
    pub fn compute(name: impl Into<String>, flops: PerfExpr) -> Task {
        Task {
            name: name.into(),
            kind: TaskKind::Compute {
                flops,
                target: ComputeTarget::Cpu,
            },
        }
    }

    /// A GPU compute task.
    pub fn gpu_compute(name: impl Into<String>, flops: PerfExpr) -> Task {
        Task {
            name: name.into(),
            kind: TaskKind::Compute {
                flops,
                target: ComputeTarget::Gpu,
            },
        }
    }

    /// A communication task.
    pub fn comm(name: impl Into<String>, bytes: PerfExpr, pattern: CommPattern) -> Task {
        Task {
            name: name.into(),
            kind: TaskKind::Communication { bytes, pattern },
        }
    }

    /// A read task.
    pub fn read(name: impl Into<String>, bytes: PerfExpr, target: IoTarget) -> Task {
        Task {
            name: name.into(),
            kind: TaskKind::Read { bytes, target },
        }
    }

    /// A write task.
    pub fn write(name: impl Into<String>, bytes: PerfExpr, target: IoTarget) -> Task {
        Task {
            name: name.into(),
            kind: TaskKind::Write { bytes, target },
        }
    }

    /// A delay task.
    pub fn delay(name: impl Into<String>, seconds: PerfExpr) -> Task {
        Task {
            name: name.into(),
            kind: TaskKind::Delay { seconds },
        }
    }

    /// The performance-model expressions this task evaluates (for
    /// validation).
    pub fn exprs(&self) -> Vec<&PerfExpr> {
        match &self.kind {
            TaskKind::Compute { flops, .. } => vec![flops],
            TaskKind::Communication { bytes, .. } => vec![bytes],
            TaskKind::Read { bytes, .. } | TaskKind::Write { bytes, .. } => vec![bytes],
            TaskKind::Delay { seconds } => vec![seconds],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build_expected_kinds() {
        let t = Task::compute("k", PerfExpr::constant(1e9));
        assert!(matches!(
            t.kind,
            TaskKind::Compute {
                target: ComputeTarget::Cpu,
                ..
            }
        ));
        let t = Task::gpu_compute("k", PerfExpr::constant(1e9));
        assert!(matches!(
            t.kind,
            TaskKind::Compute {
                target: ComputeTarget::Gpu,
                ..
            }
        ));
        let t = Task::comm("c", PerfExpr::constant(1e6), CommPattern::AllToAll);
        assert!(matches!(t.kind, TaskKind::Communication { .. }));
    }

    #[test]
    fn serde_tagged_roundtrip() {
        let tasks = vec![
            Task::compute("a", PerfExpr::parse("1e12 / num_nodes").unwrap()),
            Task::comm("b", PerfExpr::constant(1e9), CommPattern::Ring),
            Task::read("c", PerfExpr::constant(1e10), IoTarget::Pfs),
            Task::write("d", PerfExpr::constant(1e10), IoTarget::BurstBuffer),
            Task::delay("e", PerfExpr::constant(5.0)),
        ];
        let json = serde_json::to_string(&tasks).unwrap();
        let back: Vec<Task> = serde_json::from_str(&json).unwrap();
        assert_eq!(tasks, back);
    }

    #[test]
    fn compute_target_defaults_to_cpu() {
        let json = r#"{"name":"k","type":"compute","flops":"1e9"}"#;
        let t: Task = serde_json::from_str(json).unwrap();
        assert!(matches!(
            t.kind,
            TaskKind::Compute {
                target: ComputeTarget::Cpu,
                ..
            }
        ));
    }

    #[test]
    fn exprs_exposes_all_models() {
        let t = Task::write("w", PerfExpr::constant(1.0), IoTarget::Pfs);
        assert_eq!(t.exprs().len(), 1);
    }
}
