//! Standard Workload Format (SWF) support.
//!
//! SWF is the de-facto exchange format of the Parallel Workloads Archive:
//! one job per line, 18 whitespace-separated numeric fields, `;` comments.
//! Real traces can thus be replayed through the simulator as rigid
//! workloads (the original ElastiSim evaluation also feeds on synthetic and
//! trace-derived workloads).
//!
//! Two reading modes share one field decoder:
//!
//! * **Strict** ([`parse_swf`], [`SwfReader::strict`]) — any malformed
//!   line is an error naming its line number. This is what `elastisim run`
//!   uses for hand-written traces, where silence would hide typos.
//! * **Lenient** ([`SwfReader::lenient`]) — real archive traces carry `-1`
//!   sentinels, cancelled jobs that never ran, and the occasional mangled
//!   line. The lenient reader skips such records instead of failing,
//!   counting every skip by [`SkipReason`] with line numbers in a
//!   [`SkipReport`], so a replay of a 100k-job trace states exactly what
//!   was dropped and why. This is what `elastisim replay` uses.
//!
//! The reader is **streaming**: it pulls lines off any [`io::BufRead`]
//! and yields jobs one at a time, so converting a archive-scale trace
//! never materializes the record list besides the workload being built.

use std::io;

use crate::app::{ApplicationModel, Phase};
use crate::expr_serde::PerfExpr;
use crate::job::{JobSpec, WorkloadError};
use crate::task::Task;

/// PWA status code: the job ran to completion.
pub const SWF_STATUS_COMPLETED: i32 = 1;
/// PWA status code: the job failed.
pub const SWF_STATUS_FAILED: i32 = 0;
/// PWA status code: the job was cancelled (possibly before it started).
pub const SWF_STATUS_CANCELLED: i32 = 5;

/// One SWF record (the subset of fields the simulator uses, all fields
/// parsed).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SwfJob {
    /// Field 1: job number.
    pub job_id: u64,
    /// Field 2: submit time, seconds.
    pub submit: f64,
    /// Field 4: measured runtime, seconds.
    pub runtime: f64,
    /// Field 5: allocated processors (falls back to field 8 if -1).
    pub procs: u32,
    /// Field 9: requested time (walltime limit), seconds; `None` if -1.
    pub requested_time: Option<f64>,
    /// Field 11: completion status (1 = completed, 0 = failed,
    /// 5 = cancelled); -1 when the trace does not record it.
    pub status: i32,
    /// Field 17: preceding job number this one depends on; `None` if -1
    /// or absent. The PWA semantics are "can only start after", which maps
    /// onto [`JobSpec::dependencies`].
    pub preceding_job: Option<u64>,
    /// Field 18: think time (seconds) from the preceding job's
    /// termination to this job's submission; `None` if -1 or absent.
    pub think_time: Option<f64>,
}

impl SwfJob {
    /// Converts to a rigid [`JobSpec`]: a single compute phase whose
    /// per-node load reproduces the recorded runtime on a node of
    /// `node_flops` flop/s, with `procs_per_node` processors folded into
    /// one simulated node.
    pub fn to_job_spec(&self, node_flops: f64, procs_per_node: u32) -> JobSpec {
        let nodes = self.nodes(procs_per_node);
        let app = ApplicationModel::new(vec![Phase::once(
            "trace",
            vec![Task::compute(
                "recorded",
                PerfExpr::constant(self.runtime.max(0.0) * node_flops),
            )],
        )]);
        let mut spec = JobSpec::rigid(self.job_id, self.submit.max(0.0), nodes, app);
        if let Some(req) = self.requested_time {
            spec = spec.with_walltime(req);
        }
        spec
    }

    /// The simulated node count at `procs_per_node` processors per node.
    pub fn nodes(&self, procs_per_node: u32) -> u32 {
        self.procs.div_ceil(procs_per_node.max(1)).max(1)
    }
}

/// Why the lenient reader dropped a line.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum SkipReason {
    /// Short line or a non-numeric required field.
    Malformed,
    /// Neither allocated (field 5) nor requested (field 8) processors.
    MissingProcessors,
    /// Runtime is `-1` and there is no requested time to substitute.
    MissingRuntime,
    /// Status 5 (cancelled) with no recorded runtime: the job never ran,
    /// so there is nothing to replay.
    CancelledBeforeStart,
}

impl SkipReason {
    /// Stable snake_case name, used in reports and metrics.
    pub fn name(self) -> &'static str {
        match self {
            SkipReason::Malformed => "malformed",
            SkipReason::MissingProcessors => "missing_processors",
            SkipReason::MissingRuntime => "missing_runtime",
            SkipReason::CancelledBeforeStart => "cancelled_before_start",
        }
    }

    /// All reasons, in report order.
    pub const ALL: [SkipReason; 4] = [
        SkipReason::Malformed,
        SkipReason::MissingProcessors,
        SkipReason::MissingRuntime,
        SkipReason::CancelledBeforeStart,
    ];
}

impl std::fmt::Display for SkipReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How many line numbers a [`SkipReport`] retains per reason.
pub const SKIP_EXAMPLE_LINES: usize = 8;

/// Line-numbered accounting of everything the lenient reader dropped.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SkipReport {
    counts: [u64; 4],
    lines: [Vec<u64>; 4],
}

impl SkipReport {
    fn record(&mut self, reason: SkipReason, lineno: u64) {
        let i = reason as usize;
        self.counts[i] += 1;
        if self.lines[i].len() < SKIP_EXAMPLE_LINES {
            self.lines[i].push(lineno);
        }
    }

    /// Total skipped lines.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Skips for one reason.
    pub fn count(&self, reason: SkipReason) -> u64 {
        self.counts[reason as usize]
    }

    /// The first few (at most `SKIP_EXAMPLE_LINES`) 1-based line numbers
    /// skipped for `reason`.
    pub fn example_lines(&self, reason: SkipReason) -> &[u64] {
        &self.lines[reason as usize]
    }

    /// Whether nothing was skipped.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// One human-readable line per non-zero reason, e.g.
    /// `malformed: 3 (lines 7, 22, 31)`.
    pub fn render_lines(&self) -> Vec<String> {
        SkipReason::ALL
            .iter()
            .filter(|&&r| self.count(r) > 0)
            .map(|&r| {
                let shown = self.example_lines(r);
                let mut s = format!(
                    "{}: {} (line{} {}",
                    r.name(),
                    self.count(r),
                    if self.count(r) == 1 { "" } else { "s" },
                    shown
                        .iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                if (self.count(r) as usize) > shown.len() {
                    s.push_str(", …");
                }
                s.push(')');
                s
            })
            .collect()
    }
}

impl std::fmt::Display for SkipReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "no lines skipped");
        }
        write!(
            f,
            "skipped {}: {}",
            self.total(),
            self.render_lines().join("; ")
        )
    }
}

/// The `; Key: value` preamble directives of a PWA trace that matter for
/// replay. Unknown directives are ignored.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SwfHeader {
    /// `MaxNodes`: platform size in nodes.
    pub max_nodes: Option<u32>,
    /// `MaxProcs`: platform size in processors.
    pub max_procs: Option<u32>,
    /// `UnixStartTime`: epoch of the trace's t=0.
    pub unix_start_time: Option<i64>,
    /// `Computer`: the machine the trace was recorded on.
    pub computer: Option<String>,
}

impl SwfHeader {
    /// Best-known platform size at `procs_per_node` processors per node:
    /// `MaxNodes` verbatim, else `MaxProcs` folded, else `None`.
    pub fn platform_nodes(&self, procs_per_node: u32) -> Option<u32> {
        self.max_nodes.or_else(|| {
            self.max_procs
                .map(|p| p.div_ceil(procs_per_node.max(1)).max(1))
        })
    }

    fn absorb(&mut self, comment: &str) {
        let Some((key, value)) = comment.split_once(':') else {
            return;
        };
        let (key, value) = (key.trim(), value.trim());
        match key {
            "MaxNodes" => self.max_nodes = value.parse().ok(),
            "MaxProcs" => self.max_procs = value.parse().ok(),
            "UnixStartTime" => self.unix_start_time = value.parse().ok(),
            "Computer" => self.computer = Some(value.to_owned()),
            _ => {}
        }
    }
}

/// A streaming SWF reader over any [`io::BufRead`].
///
/// Yields `Result<SwfJob, WorkloadError>` items. In strict mode a bad
/// line is an error (and iteration stops, matching [`parse_swf`]); in
/// lenient mode bad or unreplayable lines are counted in the
/// [`SkipReport`] and iteration continues. I/O errors surface in both
/// modes.
pub struct SwfReader<R: io::BufRead> {
    input: R,
    strict: bool,
    lineno: u64,
    buf: String,
    parsed: u64,
    runtime_substituted: u64,
    skips: SkipReport,
    header: SwfHeader,
    fused: bool,
}

impl<R: io::BufRead> SwfReader<R> {
    /// A strict reader: malformed lines are errors.
    pub fn strict(input: R) -> Self {
        Self::new(input, true)
    }

    /// A lenient reader: unreplayable lines are skipped and counted.
    pub fn lenient(input: R) -> Self {
        Self::new(input, false)
    }

    fn new(input: R, strict: bool) -> Self {
        SwfReader {
            input,
            strict,
            lineno: 0,
            buf: String::new(),
            parsed: 0,
            runtime_substituted: 0,
            skips: SkipReport::default(),
            header: SwfHeader::default(),
            fused: false,
        }
    }

    /// Header directives seen so far (complete once the first job line
    /// has been yielded — PWA headers precede all records).
    pub fn header(&self) -> &SwfHeader {
        &self.header
    }

    /// Jobs successfully yielded so far.
    pub fn parsed(&self) -> u64 {
        self.parsed
    }

    /// Jobs whose missing runtime was substituted by their requested
    /// time (lenient mode only).
    pub fn runtime_substituted(&self) -> u64 {
        self.runtime_substituted
    }

    /// Everything skipped so far (lenient mode only).
    pub fn skip_report(&self) -> &SkipReport {
        &self.skips
    }

    fn next_job(&mut self) -> Option<Result<SwfJob, WorkloadError>> {
        loop {
            self.buf.clear();
            match self.input.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => {
                    self.fused = true;
                    return Some(Err(WorkloadError::Invalid(format!(
                        "SWF read error after line {}: {e}",
                        self.lineno
                    ))));
                }
            }
            self.lineno += 1;
            let line = self.buf.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix(';') {
                self.header.absorb(comment);
                continue;
            }
            match parse_record(line, self.lineno, self.strict) {
                Ok(Parsed::Job {
                    job,
                    runtime_substituted,
                }) => {
                    self.parsed += 1;
                    if runtime_substituted {
                        self.runtime_substituted += 1;
                    }
                    return Some(Ok(job));
                }
                Ok(Parsed::Skip(reason)) => {
                    self.skips.record(reason, self.lineno);
                }
                Err(e) => {
                    self.fused = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

impl<R: io::BufRead> Iterator for SwfReader<R> {
    type Item = Result<SwfJob, WorkloadError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.fused {
            return None;
        }
        self.next_job()
    }
}

enum Parsed {
    Job {
        job: SwfJob,
        runtime_substituted: bool,
    },
    Skip(SkipReason),
}

/// Decodes one record line. In strict mode structural problems are
/// `Err`s with the historical messages; in lenient mode they are
/// `Parsed::Skip`s. The PWA `-1` sentinel conventions are applied here:
/// allocated processors fall back to requested, a missing runtime falls
/// back to the requested time, and cancelled never-started jobs are
/// unreplayable.
fn parse_record(line: &str, lineno: u64, strict: bool) -> Result<Parsed, WorkloadError> {
    let fields: Vec<&str> = line.split_whitespace().collect();
    if fields.len() < 11 {
        if strict {
            return Err(WorkloadError::Invalid(format!(
                "SWF line {lineno}: expected ≥11 fields, got {}",
                fields.len()
            )));
        }
        return Ok(Parsed::Skip(SkipReason::Malformed));
    }
    // Required fields, parsed as before (indices are 0-based; SWF counts
    // from 1). Optional trailing columns are decoded best-effort below.
    let mut bad_field: Option<usize> = None;
    let mut num = |i: usize| -> f64 {
        fields[i].parse::<f64>().unwrap_or_else(|_| {
            bad_field.get_or_insert(i);
            f64::NAN
        })
    };
    let job_id = num(0);
    let submit = num(1);
    let runtime_raw = num(3);
    let alloc = num(4);
    let requested = num(7);
    let req_time = num(8);
    let status = num(10);
    if let Some(i) = bad_field {
        if strict {
            return Err(WorkloadError::Invalid(format!(
                "SWF line {lineno}: field {} (`{}`) is not a number",
                i + 1,
                fields[i]
            )));
        }
        return Ok(Parsed::Skip(SkipReason::Malformed));
    }
    let procs = if alloc > 0.0 {
        alloc
    } else if requested > 0.0 {
        requested
    } else {
        if strict {
            return Err(WorkloadError::Invalid(format!(
                "SWF line {lineno}: neither allocated nor requested processors known"
            )));
        }
        return Ok(Parsed::Skip(SkipReason::MissingProcessors));
    };
    let status = status as i32;
    let requested_time = (req_time > 0.0).then_some(req_time);
    // Runtime sentinels only matter in lenient mode; the strict reader
    // keeps its historical clamp-to-zero behaviour.
    let mut runtime_substituted = false;
    let runtime = if strict {
        runtime_raw.max(0.0)
    } else if runtime_raw >= 0.0 {
        runtime_raw
    } else if status == SWF_STATUS_CANCELLED {
        return Ok(Parsed::Skip(SkipReason::CancelledBeforeStart));
    } else if let Some(req) = requested_time {
        runtime_substituted = true;
        req
    } else {
        return Ok(Parsed::Skip(SkipReason::MissingRuntime));
    };
    // Optional dependency columns (fields 17/18): `-1`, absent, or
    // unparseable all mean "none" — archive traces are inconsistent here,
    // and these columns were never load-bearing for the strict reader.
    let optional = |i: usize| -> Option<f64> {
        fields
            .get(i)
            .and_then(|t| t.parse::<f64>().ok())
            .filter(|&v| v >= 0.0)
    };
    let preceding_job = optional(16).map(|v| v as u64);
    let think_time = optional(17);
    Ok(Parsed::Job {
        job: SwfJob {
            job_id: job_id as u64,
            submit,
            runtime,
            procs: procs as u32,
            requested_time,
            status,
            preceding_job,
            think_time,
        },
        runtime_substituted,
    })
}

/// Parses an SWF file strictly. Comment (`;`) and blank lines are
/// skipped; short or malformed lines are errors naming the line number.
pub fn parse_swf(text: &str) -> Result<Vec<SwfJob>, WorkloadError> {
    SwfReader::strict(text.as_bytes()).collect()
}

/// Writes jobs back out as SWF (fields the parser reads are faithful,
/// unknown fields are `-1`).
pub fn to_swf(jobs: &[SwfJob]) -> String {
    let mut out = String::from("; generated by elastisim-workload\n");
    for j in jobs {
        out.push_str(&format!(
            "{} {} -1 {} {} -1 -1 {} {} -1 {} -1 -1 -1 -1 -1 {} {}\n",
            j.job_id,
            j.submit,
            j.runtime,
            j.procs,
            j.procs,
            j.requested_time.unwrap_or(-1.0),
            j.status,
            j.preceding_job.map(|p| p as i64).unwrap_or(-1),
            j.think_time.unwrap_or(-1.0),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; Comment header
; Version: 2.2

1 0 10 3600 64 -1 -1 64 7200 -1 1 3 4 -1 1 -1 -1 -1
2 120 0 1800 -1 -1 -1 128 3600 -1 1 3 4 -1 1 -1 -1 -1
3 300 5 60 32 -1 -1 32 -1 -1 0 3 4 -1 1 -1 -1 -1
";

    #[test]
    fn parses_sample() {
        let jobs = parse_swf(SAMPLE).unwrap();
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].job_id, 1);
        assert_eq!(jobs[0].procs, 64);
        assert_eq!(jobs[0].runtime, 3600.0);
        assert_eq!(jobs[0].requested_time, Some(7200.0));
        // Job 2: allocated is -1, falls back to requested 128.
        assert_eq!(jobs[1].procs, 128);
        // Job 3: no requested time.
        assert_eq!(jobs[2].requested_time, None);
        assert_eq!(jobs[2].status, 0);
        // Dependency columns are all -1 in the sample.
        assert!(jobs.iter().all(|j| j.preceding_job.is_none()));
        assert!(jobs.iter().all(|j| j.think_time.is_none()));
    }

    #[test]
    fn roundtrip_through_writer() {
        let jobs = parse_swf(SAMPLE).unwrap();
        let text = to_swf(&jobs);
        let back = parse_swf(&text).unwrap();
        assert_eq!(jobs, back);
    }

    #[test]
    fn short_line_is_error_with_line_number() {
        let err = parse_swf("1 2 3").unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn non_numeric_field_is_error() {
        let err = parse_swf("1 0 10 x 64 -1 -1 64 7200 -1 1").unwrap_err();
        assert!(err.to_string().contains("not a number"));
    }

    #[test]
    fn to_job_spec_scales_runtime_to_flops() {
        let jobs = parse_swf(SAMPLE).unwrap();
        let spec = jobs[0].to_job_spec(2e12, 48);
        // 64 procs at 48 per node → 2 nodes.
        assert_eq!(spec.min_nodes, 2);
        assert_eq!(spec.walltime, Some(7200.0));
        spec.validate(128).unwrap();
        // Per-node load runs 3600 s on a 2e12 flop/s node.
        if let crate::task::TaskKind::Compute { flops, .. } = &spec.app.phases[0].tasks[0].kind {
            assert_eq!(flops.eval_nodes(2).unwrap(), 3600.0 * 2e12);
        } else {
            panic!("expected compute task");
        }
    }

    #[test]
    fn missing_procs_is_error() {
        let err = parse_swf("1 0 10 60 -1 -1 -1 -1 -1 -1 1").unwrap_err();
        assert!(err.to_string().contains("processors"));
    }

    #[test]
    fn dependency_columns_parse_when_present() {
        let jobs = parse_swf("7 60 -1 120 4 -1 -1 4 240 -1 1 3 4 -1 1 -1 3 30.5\n").unwrap();
        assert_eq!(jobs[0].preceding_job, Some(3));
        assert_eq!(jobs[0].think_time, Some(30.5));
        // And they survive the writer round-trip.
        let back = parse_swf(&to_swf(&jobs)).unwrap();
        assert_eq!(jobs, back);
    }

    #[test]
    fn header_directives_are_collected() {
        let text = "\
; Computer: IBM SP2
; MaxNodes: 100
; MaxProcs: 400
; UnixStartTime: 820454400
1 0 -1 60 4 -1 -1 4 120 -1 1 -1 -1 -1 -1 -1 -1 -1
";
        let mut reader = SwfReader::strict(text.as_bytes());
        let job = reader.next().unwrap().unwrap();
        assert_eq!(job.job_id, 1);
        let header = reader.header();
        assert_eq!(header.max_nodes, Some(100));
        assert_eq!(header.max_procs, Some(400));
        assert_eq!(header.unix_start_time, Some(820454400));
        assert_eq!(header.computer.as_deref(), Some("IBM SP2"));
        assert_eq!(header.platform_nodes(1), Some(100));
        assert_eq!(
            SwfHeader {
                max_nodes: None,
                ..header.clone()
            }
            .platform_nodes(4),
            Some(100),
            "MaxProcs folds by procs-per-node"
        );
    }

    #[test]
    fn lenient_reader_skips_with_reasons_and_line_numbers() {
        let text = "\
; header
1 0 10 3600 64 -1 -1 64 7200 -1 1 -1 -1 -1 -1 -1 -1 -1
garbage line
2 10 10 -1 8 -1 -1 8 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
3 20 -1 -1 -1 -1 -1 -1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
4 30 -1 -1 4 -1 -1 4 600 -1 5 -1 -1 -1 -1 -1 -1 -1
5 40 -1 -1 4 -1 -1 4 600 -1 0 -1 -1 -1 -1 -1 -1 -1
";
        let mut reader = SwfReader::lenient(text.as_bytes());
        let jobs: Vec<SwfJob> = reader.by_ref().map(|r| r.unwrap()).collect();
        // Job 1 is fine; job 2 has runtime -1 and no requested time
        // (skipped); job 3 has no processors (skipped); job 4 is cancelled
        // before start (skipped); job 5 substitutes requested time.
        assert_eq!(
            jobs.iter().map(|j| j.job_id).collect::<Vec<_>>(),
            vec![1, 5]
        );
        assert_eq!(jobs[1].runtime, 600.0, "requested time substituted");
        assert_eq!(reader.parsed(), 2);
        assert_eq!(reader.runtime_substituted(), 1);
        let skips = reader.skip_report();
        assert_eq!(skips.total(), 4);
        assert_eq!(skips.count(SkipReason::Malformed), 1);
        assert_eq!(skips.count(SkipReason::MissingRuntime), 1);
        assert_eq!(skips.count(SkipReason::MissingProcessors), 1);
        assert_eq!(skips.count(SkipReason::CancelledBeforeStart), 1);
        assert_eq!(skips.example_lines(SkipReason::Malformed), &[3]);
        assert_eq!(skips.example_lines(SkipReason::MissingRuntime), &[4]);
        assert_eq!(skips.example_lines(SkipReason::MissingProcessors), &[5]);
        assert_eq!(skips.example_lines(SkipReason::CancelledBeforeStart), &[6]);
        let rendered = skips.to_string();
        assert!(rendered.contains("malformed: 1 (line 3)"), "{rendered}");
        assert!(
            rendered.contains("cancelled_before_start: 1 (line 6)"),
            "{rendered}"
        );
    }

    #[test]
    fn strict_reader_stops_at_first_error() {
        let text = "1 0 10 60 2 -1 -1 2 120 -1 1\nbroken\n2 0 10 60 2 -1 -1 2 120 -1 1\n";
        let mut reader = SwfReader::strict(text.as_bytes());
        assert!(reader.next().unwrap().is_ok());
        assert!(reader.next().unwrap().is_err());
        assert!(reader.next().is_none(), "errors fuse the iterator");
    }

    #[test]
    fn skip_report_caps_example_lines() {
        let mut report = SkipReport::default();
        for line in 0..20 {
            report.record(SkipReason::Malformed, line + 1);
        }
        assert_eq!(report.count(SkipReason::Malformed), 20);
        assert_eq!(
            report.example_lines(SkipReason::Malformed).len(),
            SKIP_EXAMPLE_LINES
        );
        assert!(report.to_string().contains('…'), "{report}");
    }
}
