//! Phase-structured application model.

use serde::{Deserialize, Serialize};

use crate::task::Task;

/// One phase of an application: a task list executed `iterations` times.
///
/// Phases are the granularity of elasticity: after each iteration of a
/// phase marked as a *scheduling point*, the runtime checks for pending
/// reconfigurations (malleable expand/shrink ordered by the scheduler) and
/// emits evolving resource requests. This matches ElastiSim's contract that
/// applications change size only at well-defined points.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Phase {
    /// Label used in traces.
    pub name: String,
    /// How many times the task list repeats.
    pub iterations: u32,
    /// Tasks run sequentially within an iteration.
    pub tasks: Vec<Task>,
    /// Whether a scheduling point follows each iteration of this phase.
    #[serde(default = "default_true")]
    pub scheduling_point: bool,
    /// For evolving jobs: the node count the application *asks for* upon
    /// entering this phase (`None` = keep current size). Ignored for other
    /// job classes.
    #[serde(default)]
    pub evolving_request: Option<u32>,
}

fn default_true() -> bool {
    true
}

impl Phase {
    /// A single-iteration phase.
    pub fn once(name: impl Into<String>, tasks: Vec<Task>) -> Phase {
        Phase {
            name: name.into(),
            iterations: 1,
            tasks,
            scheduling_point: true,
            evolving_request: None,
        }
    }

    /// An iterated phase.
    pub fn repeated(name: impl Into<String>, iterations: u32, tasks: Vec<Task>) -> Phase {
        Phase {
            name: name.into(),
            iterations,
            tasks,
            scheduling_point: true,
            evolving_request: None,
        }
    }

    /// Disables the scheduling point after this phase's iterations.
    pub fn without_scheduling_point(mut self) -> Phase {
        self.scheduling_point = false;
        self
    }

    /// Marks an evolving resource request on phase entry.
    pub fn with_evolving_request(mut self, nodes: u32) -> Phase {
        self.evolving_request = Some(nodes);
        self
    }
}

/// A complete application description: the phases a job executes in order.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct ApplicationModel {
    /// Phases in execution order.
    pub phases: Vec<Phase>,
}

impl ApplicationModel {
    /// Builds a model from phases.
    pub fn new(phases: Vec<Phase>) -> Self {
        ApplicationModel { phases }
    }

    /// Total number of task executions (Σ iterations × tasks), a rough
    /// size measure used by the simulator-performance experiments.
    pub fn total_task_executions(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| p.iterations as u64 * p.tasks.len() as u64)
            .sum()
    }

    /// Number of scheduling points the application will pass.
    pub fn total_scheduling_points(&self) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.scheduling_point)
            .map(|p| p.iterations as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr_serde::PerfExpr;
    use crate::task::{CommPattern, Task};

    fn sample() -> ApplicationModel {
        ApplicationModel::new(vec![
            Phase::once("init", vec![Task::delay("boot", PerfExpr::constant(1.0))]),
            Phase::repeated(
                "solve",
                10,
                vec![
                    Task::compute("stencil", PerfExpr::parse("1e12 / num_nodes").unwrap()),
                    Task::comm("halo", PerfExpr::constant(1e8), CommPattern::Ring),
                ],
            ),
        ])
    }

    #[test]
    fn counts() {
        let app = sample();
        assert_eq!(app.total_task_executions(), 1 + 10 * 2);
        assert_eq!(app.total_scheduling_points(), 11);
    }

    #[test]
    fn scheduling_point_opt_out() {
        let app = ApplicationModel::new(vec![
            Phase::repeated("a", 5, vec![]).without_scheduling_point(),
            Phase::once("b", vec![]),
        ]);
        assert_eq!(app.total_scheduling_points(), 1);
    }

    #[test]
    fn serde_roundtrip() {
        let app = sample();
        let json = serde_json::to_string_pretty(&app).unwrap();
        let back: ApplicationModel = serde_json::from_str(&json).unwrap();
        assert_eq!(app, back);
    }

    #[test]
    fn evolving_request_marker() {
        let p = Phase::once("grow", vec![]).with_evolving_request(32);
        assert_eq!(p.evolving_request, Some(32));
    }
}
