//! Malleability injection for replayed traces.
//!
//! Archive traces record only *rigid* jobs, so a trace replay alone cannot
//! say anything about malleable scheduling. Following Zojer/Posner/Özden
//! ("Evaluating Malleable Job Scheduling in HPC Clusters using Real-World
//! Workloads"), [`convert_stream`] rewrites a seeded, deterministic
//! fraction of the replayed jobs into moldable/malleable jobs:
//!
//! * **Which** jobs are rewritten depends only on `(seed, job id)` — a
//!   per-job hash, not a shared RNG stream — so the injected set is
//!   independent of iteration order, worker count, or how many jobs were
//!   skipped before a given line.
//! * **Size ranges** derive from the trace: an injected job may shrink to
//!   half its recorded size and grow to double (capped at the platform),
//!   so the original requested size is always inside the range.
//! * **Speedup curves** derive from the recorded runtime via [`PerfExpr`]
//!   performance models: the job's total recorded work is spread over
//!   `num_nodes` under a [`ScalingModel`] (ideal linear, or Amdahl with a
//!   serial fraction), so running smaller takes proportionally longer.
//!
//! With `malleable_frac = 0` and `moldable_frac = 0` every job takes the
//! plain [`SwfJob::to_job_spec`] path, byte-for-byte — replay at fraction
//! zero is *identical* to rigid conversion, which the conformance suite
//! pins via report fingerprints.

use std::collections::HashSet;
use std::io;

use crate::app::{ApplicationModel, Phase};
use crate::expr_serde::PerfExpr;
use crate::job::{JobSpec, WorkloadError};
use crate::swf::{SkipReport, SwfHeader, SwfJob, SwfReader};
use crate::task::Task;

/// How an injected job's work scales with its node count.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ScalingModel {
    /// Ideal strong scaling: per-node work is `W / num_nodes`.
    Linear,
    /// Amdahl's law: a `serial_fraction` of the work does not parallelize,
    /// so per-node work is `s·W + (1-s)·W / num_nodes`.
    Amdahl {
        /// The non-parallelizable share of the work, in `[0, 1]`.
        serial_fraction: f64,
    },
}

/// Default Amdahl serial fraction when `amdahl` is given without one.
pub const DEFAULT_SERIAL_FRACTION: f64 = 0.05;

impl ScalingModel {
    /// Parses `linear`, `amdahl`, or `amdahl:<serial-fraction>`.
    pub fn parse(s: &str) -> Result<ScalingModel, WorkloadError> {
        match s {
            "linear" => Ok(ScalingModel::Linear),
            "amdahl" => Ok(ScalingModel::Amdahl {
                serial_fraction: DEFAULT_SERIAL_FRACTION,
            }),
            _ => {
                if let Some(frac) = s.strip_prefix("amdahl:") {
                    let serial_fraction: f64 = frac.parse().map_err(|_| {
                        WorkloadError::Invalid(format!(
                            "bad scaling model `{s}`: `{frac}` is not a number"
                        ))
                    })?;
                    if !(0.0..=1.0).contains(&serial_fraction) {
                        return Err(WorkloadError::Invalid(format!(
                            "bad scaling model `{s}`: serial fraction must be in [0, 1]"
                        )));
                    }
                    Ok(ScalingModel::Amdahl { serial_fraction })
                } else {
                    Err(WorkloadError::Invalid(format!(
                        "unknown scaling model `{s}` (expected linear, amdahl, or amdahl:<f>)"
                    )))
                }
            }
        }
    }

    /// Stable name used in labels and fingerprint-visible serialization.
    pub fn name(&self) -> String {
        match self {
            ScalingModel::Linear => "linear".into(),
            ScalingModel::Amdahl { serial_fraction } => format!("amdahl:{serial_fraction:?}"),
        }
    }

    /// The per-node work expression for a job whose total recorded work is
    /// `total_flops`. At the job's original size the model reproduces the
    /// recorded runtime exactly (for linear) or by construction of the
    /// serial split (for Amdahl).
    pub fn work_expr(&self, total_flops: f64) -> PerfExpr {
        let src = match self {
            ScalingModel::Linear => format!("{total_flops:?} / num_nodes"),
            ScalingModel::Amdahl { serial_fraction } => {
                let serial = serial_fraction * total_flops;
                let parallel = (1.0 - serial_fraction) * total_flops;
                format!("{serial:?} + {parallel:?} / num_nodes")
            }
        };
        PerfExpr::parse(&src).expect("scaling-model expressions are well-formed")
    }
}

/// The job class an injection decision assigns.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InjectedClass {
    /// Left as recorded.
    Rigid,
    /// Size chosen once at start, fixed thereafter.
    Moldable,
    /// Resizable while running.
    Malleable,
}

/// The seeded injection model: which jobs are rewritten, and how.
#[derive(Clone, PartialEq, Debug)]
pub struct InjectionConfig {
    /// Seed of the per-job classification hash.
    pub seed: u64,
    /// Fraction of jobs rewritten as malleable, in `[0, 1]`.
    pub malleable_frac: f64,
    /// Fraction of jobs rewritten as moldable, in `[0, 1]`.
    pub moldable_frac: f64,
    /// The speedup curve injected jobs follow.
    pub scaling: ScalingModel,
    /// Platform size in nodes, capping injected maximum sizes. `None`
    /// derives it from the trace (header `MaxNodes`/`MaxProcs`, else the
    /// largest job).
    pub platform_nodes: Option<u32>,
}

impl Default for InjectionConfig {
    fn default() -> Self {
        InjectionConfig {
            seed: 0,
            malleable_frac: 0.0,
            moldable_frac: 0.0,
            scaling: ScalingModel::Linear,
            platform_nodes: None,
        }
    }
}

impl InjectionConfig {
    /// Checks fractions are sane.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        for (name, v) in [
            ("malleable-frac", self.malleable_frac),
            ("moldable-frac", self.moldable_frac),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(WorkloadError::Invalid(format!(
                    "--{name} must be in [0, 1], got {v}"
                )));
            }
        }
        if self.malleable_frac + self.moldable_frac > 1.0 {
            return Err(WorkloadError::Invalid(format!(
                "malleable-frac + moldable-frac must be ≤ 1, got {}",
                self.malleable_frac + self.moldable_frac
            )));
        }
        Ok(())
    }

    /// The class this configuration assigns to `job_id`. Pure in
    /// `(seed, malleable_frac, moldable_frac, job_id)` — two configs that
    /// agree on those agree on every decision, regardless of what else is
    /// in the trace or in which order jobs are seen.
    pub fn classify(&self, job_id: u64) -> InjectedClass {
        let u = unit_hash(self.seed, job_id);
        if u < self.malleable_frac {
            InjectedClass::Malleable
        } else if u < self.malleable_frac + self.moldable_frac {
            InjectedClass::Moldable
        } else {
            InjectedClass::Rigid
        }
    }

    /// Fingerprint-visible serialization of the injection parameters.
    pub fn canonical(&self) -> String {
        format!(
            "seed={};malleable={:?};moldable={:?};scaling={};platform={:?}",
            self.seed,
            self.malleable_frac,
            self.moldable_frac,
            self.scaling.name(),
            self.platform_nodes,
        )
    }
}

/// A per-job unit sample in `[0, 1)` from a SplitMix64-style finalizer
/// over `(seed, job_id)`. No shared state: the same pair always maps to
/// the same value.
fn unit_hash(seed: u64, job_id: u64) -> f64 {
    let mut z = seed
        ^ job_id
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// The injected elastic size range around a recorded size: shrink to half,
/// grow to double (platform-capped), never excluding the original size.
pub fn injected_range(orig_nodes: u32, platform_nodes: u32) -> (u32, u32) {
    let min = (orig_nodes / 2).max(1);
    let max = orig_nodes
        .saturating_mul(2)
        .min(platform_nodes)
        .max(orig_nodes);
    (min, max)
}

/// Counters from one streaming conversion, surfaced by `--metrics-out`
/// and the replay report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReplayStats {
    /// Job lines successfully parsed.
    pub parsed: u64,
    /// Everything the lenient reader dropped, with reasons and lines.
    pub skipped: SkipReport,
    /// Jobs whose missing runtime was substituted by their request.
    pub runtime_substituted: u64,
    /// Jobs rewritten as malleable.
    pub injected_malleable: u64,
    /// Jobs rewritten as moldable.
    pub injected_moldable: u64,
    /// Jobs left rigid.
    pub rigid: u64,
    /// `preceding_job` references dropped because the target was skipped
    /// or never appeared.
    pub dropped_dependencies: u64,
    /// The largest single-job node count seen.
    pub max_job_nodes: u32,
    /// Header directives of the trace.
    pub header: SwfHeader,
}

impl ReplayStats {
    /// Total rewritten (non-rigid) jobs.
    pub fn injected(&self) -> u64 {
        self.injected_malleable + self.injected_moldable
    }

    /// The platform size the conversion used: explicit override, else
    /// header directive, else the largest job in the trace.
    pub fn platform_nodes(&self, cfg: &InjectionConfig, procs_per_node: u32) -> u32 {
        cfg.platform_nodes
            .or_else(|| self.header.platform_nodes(procs_per_node))
            .unwrap_or(0)
            .max(self.max_job_nodes)
            .max(1)
    }
}

/// Streams an SWF trace into a workload, injecting malleability per
/// `cfg`. One pass over the input: each record is parsed, classified,
/// and converted straight into the output `Vec<JobSpec>` — no
/// intermediate per-job collection exists besides the workload itself
/// (plus an id set for dependency validation).
///
/// Injected size ranges are platform-capped in a fix-up pass *after*
/// streaming (the platform size may only be known once the whole trace
/// has been seen), which also drops dependencies on jobs that were
/// skipped. Both passes depend only on trace content and `cfg`, so the
/// result is deterministic and order-independent.
pub fn convert_stream<R: io::BufRead>(
    input: R,
    node_flops: f64,
    procs_per_node: u32,
    cfg: &InjectionConfig,
) -> Result<(Vec<JobSpec>, ReplayStats), WorkloadError> {
    cfg.validate()?;
    let mut reader = SwfReader::lenient(input);
    let mut jobs: Vec<JobSpec> = Vec::new();
    let mut seen_ids: HashSet<u64> = HashSet::new();
    let mut stats = ReplayStats::default();
    for record in reader.by_ref() {
        let record = record?; // only I/O errors in lenient mode
        let nodes = record.nodes(procs_per_node);
        stats.max_job_nodes = stats.max_job_nodes.max(nodes);
        let mut spec = match cfg.classify(record.job_id) {
            InjectedClass::Rigid => {
                stats.rigid += 1;
                record.to_job_spec(node_flops, procs_per_node)
            }
            class => {
                match class {
                    InjectedClass::Malleable => stats.injected_malleable += 1,
                    InjectedClass::Moldable => stats.injected_moldable += 1,
                    InjectedClass::Rigid => unreachable!("matched above"),
                }
                injected_spec(&record, nodes, node_flops, class, cfg.scaling)
            }
        };
        if let Some(dep) = record.preceding_job {
            // Recorded "can only start after" dependency; targets that
            // were skipped (or are forward references — unheard of in
            // archive traces) are dropped in the fix-up pass below.
            spec = spec.with_dependencies([dep]);
        }
        seen_ids.insert(record.job_id);
        jobs.push(spec);
    }
    stats.parsed = reader.parsed();
    stats.runtime_substituted = reader.runtime_substituted();
    stats.skipped = reader.skip_report().clone();
    stats.header = reader.header().clone();

    // Fix-up pass over the workload itself: platform-cap the injected
    // ranges now that the trace-wide maximum is known, and drop
    // dependencies whose target never made it into the workload.
    let platform = stats.platform_nodes(cfg, procs_per_node);
    for spec in &mut jobs {
        if spec.class.is_elastic() || spec.min_nodes != spec.max_nodes {
            spec.max_nodes = spec.max_nodes.min(platform).max(spec.min_nodes);
        }
        let before = spec.dependencies.len();
        spec.dependencies.retain(|d| seen_ids.contains(&d.0));
        stats.dropped_dependencies += (before - spec.dependencies.len()) as u64;
    }
    Ok((jobs, stats))
}

/// Builds the moldable/malleable rewrite of one record: the recorded
/// total work (`runtime × flops × original nodes`) spread over
/// `num_nodes` under the scaling model, sized half-to-double around the
/// recorded size. The platform cap is applied by the caller's fix-up
/// pass. The trace's walltime is deliberately not carried over: it was
/// requested for the rigid size, and an injected job legitimately runs
/// longer when the scheduler shrinks it.
fn injected_spec(
    record: &SwfJob,
    nodes: u32,
    node_flops: f64,
    class: InjectedClass,
    scaling: ScalingModel,
) -> JobSpec {
    let total_flops = record.runtime.max(0.0) * node_flops * f64::from(nodes);
    let app = ApplicationModel::new(vec![Phase::once(
        "trace",
        vec![Task::compute("recorded", scaling.work_expr(total_flops))],
    )]);
    let (min, max) = (
        (nodes / 2).max(1),
        nodes.saturating_mul(2), // capped to the platform by the caller
    );
    match class {
        InjectedClass::Moldable => {
            JobSpec::moldable(record.job_id, record.submit.max(0.0), min, max, app)
        }
        InjectedClass::Malleable => {
            JobSpec::malleable(record.job_id, record.submit.max(0.0), min, max, app)
        }
        InjectedClass::Rigid => unreachable!("rigid jobs use SwfJob::to_job_spec"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobClass;
    use crate::swf::to_swf;

    fn sample_trace(n: u64) -> String {
        let jobs: Vec<SwfJob> = (1..=n)
            .map(|i| SwfJob {
                job_id: i,
                submit: i as f64 * 10.0,
                runtime: 600.0 + i as f64,
                procs: 1 + (i % 64) as u32,
                requested_time: Some(7200.0),
                status: 1,
                preceding_job: None,
                think_time: None,
            })
            .collect();
        to_swf(&jobs)
    }

    #[test]
    fn scaling_model_parsing() {
        assert_eq!(ScalingModel::parse("linear").unwrap(), ScalingModel::Linear);
        assert_eq!(
            ScalingModel::parse("amdahl").unwrap(),
            ScalingModel::Amdahl {
                serial_fraction: DEFAULT_SERIAL_FRACTION
            }
        );
        assert_eq!(
            ScalingModel::parse("amdahl:0.2").unwrap(),
            ScalingModel::Amdahl {
                serial_fraction: 0.2
            }
        );
        assert!(ScalingModel::parse("amdahl:2").is_err());
        assert!(ScalingModel::parse("amdahl:x").is_err());
        assert!(ScalingModel::parse("cubic").is_err());
    }

    #[test]
    fn linear_work_expr_reproduces_runtime_at_original_size() {
        // 600 s on 8 nodes of 2e12 flop/s → total work 9.6e15.
        let w = 600.0 * 2e12 * 8.0;
        let expr = ScalingModel::Linear.work_expr(w);
        assert_eq!(expr.eval_nodes(8).unwrap(), 600.0 * 2e12);
        // Half the nodes → double the per-node work.
        assert_eq!(expr.eval_nodes(4).unwrap(), 2.0 * 600.0 * 2e12);
    }

    #[test]
    fn amdahl_work_expr_has_serial_floor() {
        let w = 1e15;
        let expr = ScalingModel::Amdahl {
            serial_fraction: 0.1,
        }
        .work_expr(w);
        // At 1 node: all of it. As nodes → ∞: the serial 10% remains.
        assert_eq!(expr.eval_nodes(1).unwrap(), w);
        let at_1000 = expr.eval_nodes(1000).unwrap();
        assert!(at_1000 > 0.1 * w && at_1000 < 0.102 * w, "{at_1000:e}");
    }

    #[test]
    fn classification_is_order_independent_and_frac_monotone() {
        let cfg = |frac: f64| InjectionConfig {
            seed: 42,
            malleable_frac: frac,
            ..InjectionConfig::default()
        };
        // Pure per-id: same answers regardless of call order.
        let forward: Vec<InjectedClass> = (0..1000).map(|id| cfg(0.3).classify(id)).collect();
        let backward: Vec<InjectedClass> =
            (0..1000).rev().map(|id| cfg(0.3).classify(id)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
        // Fraction 0 and 1 are total.
        assert!((0..1000).all(|id| cfg(0.0).classify(id) == InjectedClass::Rigid));
        assert!((0..1000).all(|id| cfg(1.0).classify(id) == InjectedClass::Malleable));
        // Raising the fraction only ever adds malleable jobs (nesting):
        // a job malleable at 0.3 stays malleable at 0.6.
        for id in 0..1000 {
            if cfg(0.3).classify(id) == InjectedClass::Malleable {
                assert_eq!(cfg(0.6).classify(id), InjectedClass::Malleable);
            }
        }
        // And the hit rate is in the right ballpark.
        let hits = forward
            .iter()
            .filter(|&&c| c == InjectedClass::Malleable)
            .count();
        assert!((200..400).contains(&hits), "{hits}");
    }

    #[test]
    fn frac_zero_matches_plain_rigid_conversion() {
        let trace = sample_trace(50);
        let (jobs, stats) =
            convert_stream(trace.as_bytes(), 2e12, 1, &InjectionConfig::default()).unwrap();
        let rigid: Vec<JobSpec> = crate::swf::parse_swf(&trace)
            .unwrap()
            .iter()
            .map(|j| j.to_job_spec(2e12, 1))
            .collect();
        assert_eq!(jobs, rigid);
        assert_eq!(stats.parsed, 50);
        assert_eq!(stats.rigid, 50);
        assert_eq!(stats.injected(), 0);
        assert!(stats.skipped.is_empty());
    }

    #[test]
    fn injected_ranges_contain_the_original_size() {
        let trace = sample_trace(200);
        let originals: Vec<(u64, u32)> = crate::swf::parse_swf(&trace)
            .unwrap()
            .iter()
            .map(|j| (j.job_id, j.nodes(1)))
            .collect();
        let cfg = InjectionConfig {
            seed: 7,
            malleable_frac: 0.4,
            moldable_frac: 0.3,
            ..InjectionConfig::default()
        };
        let (jobs, stats) = convert_stream(trace.as_bytes(), 2e12, 1, &cfg).unwrap();
        assert!(stats.injected() > 0);
        assert!(stats.injected_moldable > 0);
        for (spec, (id, orig)) in jobs.iter().zip(&originals) {
            assert_eq!(spec.id.0, *id);
            assert!(
                spec.min_nodes <= *orig && *orig <= spec.max_nodes,
                "job {id}: {}..{} excludes original {orig}",
                spec.min_nodes,
                spec.max_nodes
            );
            assert!(spec.max_nodes <= stats.platform_nodes(&cfg, 1));
        }
        crate::job::validate_workload(&jobs, stats.platform_nodes(&cfg, 1) as usize).unwrap();
    }

    #[test]
    fn injected_set_depends_only_on_seed_and_frac() {
        let cfg = InjectionConfig {
            seed: 11,
            malleable_frac: 0.5,
            ..InjectionConfig::default()
        };
        let ids = |trace: &str| -> Vec<u64> {
            let (jobs, _) = convert_stream(trace.as_bytes(), 2e12, 1, &cfg).unwrap();
            jobs.iter()
                .filter(|j| j.class == JobClass::Malleable)
                .map(|j| j.id.0)
                .collect()
        };
        let full = sample_trace(100);
        // Dropping unrelated lines does not change the decisions on the
        // survivors — classification is per-id, not positional.
        let half: String = full
            .lines()
            .filter(|l| l.starts_with(';') || !l.starts_with('9'))
            .map(|l| format!("{l}\n"))
            .collect();
        let full_ids = ids(&full);
        let half_ids = ids(&half);
        assert!(half_ids.iter().all(|id| full_ids.contains(id)));
        assert!(full_ids
            .iter()
            .filter(|id| !id.to_string().starts_with('9'))
            .all(|id| half_ids.contains(id)));
    }

    #[test]
    fn dependencies_survive_when_target_parsed_and_drop_otherwise() {
        let trace = "\
1 0 -1 600 4 -1 -1 4 1200 -1 1 -1 -1 -1 -1 -1 -1 -1
2 10 -1 -1 -1 -1 -1 -1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
3 20 -1 600 4 -1 -1 4 1200 -1 1 -1 -1 -1 -1 -1 1 -1
4 30 -1 600 4 -1 -1 4 1200 -1 1 -1 -1 -1 -1 -1 2 -1
";
        let (jobs, stats) =
            convert_stream(trace.as_bytes(), 2e12, 1, &InjectionConfig::default()).unwrap();
        assert_eq!(jobs.len(), 3, "job 2 is skipped (no procs)");
        let by_id = |id: u64| jobs.iter().find(|j| j.id.0 == id).unwrap();
        assert_eq!(by_id(3).dependencies, vec![crate::job::JobId(1)]);
        assert!(
            by_id(4).dependencies.is_empty(),
            "dependency on skipped job 2 is dropped"
        );
        assert_eq!(stats.dropped_dependencies, 1);
        crate::job::validate_workload(&jobs, 4).unwrap();
    }

    #[test]
    fn fractions_are_validated() {
        for (m, o) in [(-0.1, 0.0), (1.1, 0.0), (0.0, 1.5), (0.6, 0.6)] {
            let cfg = InjectionConfig {
                malleable_frac: m,
                moldable_frac: o,
                ..InjectionConfig::default()
            };
            assert!(cfg.validate().is_err(), "{m} {o}");
        }
    }

    #[test]
    fn injected_range_helper_contains_original() {
        for orig in [1u32, 2, 3, 64, 1000] {
            for platform in [1u32, 4, 64, 4096] {
                let (min, max) = injected_range(orig, platform.max(orig));
                assert!(min <= orig && orig <= max, "{orig} {platform}");
                assert!(min >= 1);
            }
        }
    }
}
