//! Sampling distributions for workload generation.
//!
//! `rand` (sanctioned) provides uniform sampling; the classical transforms
//! below derive the distributions batch-workload models actually use —
//! exponential inter-arrivals, lognormal runtimes, Weibull bursts — without
//! pulling in `rand_distr`.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A parametric distribution over positive reals.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
#[serde(tag = "dist", rename_all = "snake_case")]
pub enum Distribution {
    /// Always `value`.
    Fixed {
        /// The constant value.
        value: f64,
    },
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// Exponential with the given mean (inter-arrival times of a Poisson
    /// process).
    Exponential {
        /// Mean of the distribution (1/λ).
        mean: f64,
    },
    /// Lognormal: `exp(N(mu, sigma))`. The classic fit for job runtimes.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Weibull with shape `k` and scale `lambda`; `k < 1` gives the heavy
    /// tail seen in supercomputer arrival bursts.
    Weibull {
        /// Shape parameter.
        k: f64,
        /// Scale parameter.
        lambda: f64,
    },
}

impl Distribution {
    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Distribution::Fixed { value } => value,
            Distribution::Uniform { lo, hi } => {
                debug_assert!(hi > lo);
                rng.gen_range(lo..hi)
            }
            Distribution::Exponential { mean } => {
                // Inverse CDF; guard u=0 which would give infinity.
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                -mean * u.ln()
            }
            Distribution::LogNormal { mu, sigma } => (mu + sigma * standard_normal(rng)).exp(),
            Distribution::Weibull { k, lambda } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                lambda * (-u.ln()).powf(1.0 / k)
            }
        }
    }

    /// The distribution's theoretical mean (used by tests and by workload
    /// reports).
    pub fn mean(&self) -> f64 {
        match *self {
            Distribution::Fixed { value } => value,
            Distribution::Uniform { lo, hi } => (lo + hi) / 2.0,
            Distribution::Exponential { mean } => mean,
            Distribution::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            Distribution::Weibull { k, lambda } => lambda * gamma(1.0 + 1.0 / k),
        }
    }
}

/// Box–Muller standard normal variate.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Lanczos approximation of the gamma function (for Weibull means).
fn gamma(x: f64) -> f64 {
    // g = 7, n = 9 coefficients; |relative error| < 1e-13 on x > 0.5.
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision)] // published Lanczos coefficients
    const C: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = C[0];
        let t = x + G + 0.5;
        for (i, &c) in C.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        std::f64::consts::TAU.sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// Convenience: a seeded sampler bundling a distribution with an RNG view.
pub struct Sampler<'a, R: Rng + ?Sized> {
    dist: Distribution,
    rng: &'a mut R,
}

impl<'a, R: Rng + ?Sized> Sampler<'a, R> {
    /// Creates a sampler.
    pub fn new(dist: Distribution, rng: &'a mut R) -> Self {
        Sampler { dist, rng }
    }

    /// Draws one sample.
    pub fn draw(&mut self) -> f64 {
        self.dist.sample(self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn empirical_mean(d: Distribution, n: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(42);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn fixed_is_constant() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = Distribution::Fixed { value: 3.0 };
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.0);
        }
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Distribution::Uniform { lo: 2.0, hi: 5.0 };
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!((2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Distribution::Exponential { mean: 10.0 };
        let m = empirical_mean(d, 200_000);
        assert!((m - 10.0).abs() < 0.2, "mean {m}");
    }

    #[test]
    fn lognormal_mean_converges() {
        let d = Distribution::LogNormal {
            mu: 1.0,
            sigma: 0.5,
        };
        let m = empirical_mean(d, 200_000);
        assert!(
            (m - d.mean()).abs() / d.mean() < 0.02,
            "mean {m} vs {}",
            d.mean()
        );
    }

    #[test]
    fn weibull_mean_converges() {
        let d = Distribution::Weibull {
            k: 1.5,
            lambda: 2.0,
        };
        let m = empirical_mean(d, 200_000);
        assert!(
            (m - d.mean()).abs() / d.mean() < 0.02,
            "mean {m} vs {}",
            d.mean()
        );
    }

    #[test]
    fn gamma_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma(2.0) - 1.0).abs() < 1e-10);
        assert!((gamma(5.0) - 24.0).abs() < 1e-8);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn samples_are_positive() {
        let mut rng = StdRng::seed_from_u64(7);
        for d in [
            Distribution::Exponential { mean: 1.0 },
            Distribution::LogNormal {
                mu: 0.0,
                sigma: 1.0,
            },
            Distribution::Weibull {
                k: 0.7,
                lambda: 1.0,
            },
        ] {
            for _ in 0..1000 {
                assert!(d.sample(&mut rng) > 0.0);
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let d = Distribution::Exponential { mean: 5.0 };
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn serde_roundtrip() {
        let d = Distribution::Weibull {
            k: 0.8,
            lambda: 3.0,
        };
        let json = serde_json::to_string(&d).unwrap();
        let back: Distribution = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
