//! Serde wrapper for performance-model expressions.
//!
//! Job files store performance models as strings (`"1e12 / num_nodes"`),
//! matching the original ElastiSim JSON job descriptions. [`PerfExpr`]
//! wraps [`elastisim_expr::Expr`] with string-based serde and a few
//! conveniences used throughout the workload model.

use std::fmt;

use elastisim_expr::{Context, EvalError, Expr};
use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// A performance-model expression, serialized as its source string.
#[derive(Clone, PartialEq, Debug)]
pub struct PerfExpr(pub Expr);

impl PerfExpr {
    /// Parses from source text.
    pub fn parse(src: &str) -> Result<Self, elastisim_expr::ParseError> {
        Expr::parse(src).map(|e| PerfExpr(e.fold_constants()))
    }

    /// A constant model.
    pub fn constant(v: f64) -> Self {
        PerfExpr(Expr::constant(v))
    }

    /// Evaluates with `num_nodes` bound (the dominant use in the
    /// simulator).
    pub fn eval_nodes(&self, num_nodes: usize) -> Result<f64, EvalError> {
        self.0.eval(&Context::with_num_nodes(num_nodes))
    }

    /// Evaluates against a full context.
    pub fn eval(&self, ctx: &Context) -> Result<f64, EvalError> {
        self.0.eval(ctx)
    }
}

impl fmt::Display for PerfExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl From<f64> for PerfExpr {
    fn from(v: f64) -> Self {
        PerfExpr::constant(v)
    }
}

impl Serialize for PerfExpr {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.0.to_string())
    }
}

impl<'de> Deserialize<'de> for PerfExpr {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let src = String::deserialize(deserializer)?;
        PerfExpr::parse(&src).map_err(|e| D::Error::custom(format!("bad expression: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serde_roundtrip_preserves_value() {
        let e = PerfExpr::parse("1e12 / num_nodes + 5").unwrap();
        let json = serde_json::to_string(&e).unwrap();
        let back: PerfExpr = serde_json::from_str(&json).unwrap();
        for n in [1, 4, 128] {
            assert_eq!(e.eval_nodes(n), back.eval_nodes(n));
        }
    }

    #[test]
    fn bad_expression_rejected_at_deserialize() {
        let r: Result<PerfExpr, _> = serde_json::from_str("\"1 +\"");
        assert!(r.is_err());
    }

    #[test]
    fn constant_from_f64() {
        let e: PerfExpr = 42.0.into();
        assert_eq!(e.eval_nodes(10).unwrap(), 42.0);
    }

    #[test]
    fn parse_folds_constants() {
        let e = PerfExpr::parse("2 * 3 * num_nodes").unwrap();
        assert_eq!(e.to_string(), "(6 * num_nodes)");
    }
}
