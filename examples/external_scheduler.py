#!/usr/bin/env python3
"""A first-come-first-served scheduler speaking the elastisim wire protocol.

Run it with:

    elastisim run --platform platform.json --jobs jobs.json \
        --scheduler-cmd "python3 examples/external_scheduler.py" --out results/

The engine writes one JSON request per scheduler invocation to stdin and
expects one JSON response per line on stdout (protocol reference:
DESIGN.md section 8). Only the standard library is used.
"""

import json
import sys

PROTOCOL = 1


def schedule(view):
    """Start queued jobs in submission order on the lowest free nodes."""
    free = sorted(view["free_nodes"])
    decisions = []
    queue = [j for j in view["jobs"] if j["state"] == "pending"]
    queue.sort(key=lambda j: (j["submit_time"], j["id"]))
    for job in queue:
        want = job["fixed_start"] or job["min_nodes"]
        if want > len(free):
            break  # strict FCFS: the head of the queue blocks everyone behind it
        decisions.append({"action": "start", "job": job["id"], "nodes": free[:want]})
        free = free[want:]
    return decisions


def main():
    for line in sys.stdin:
        request = json.loads(line)
        if request["protocol"] != PROTOCOL:
            sys.exit(f"protocol version mismatch: engine speaks v{request['protocol']}")
        response = {
            "protocol": PROTOCOL,
            "seq": request["seq"],
            "decisions": schedule(request["view"]),
        }
        print(json.dumps(response), flush=True)


if __name__ == "__main__":
    main()
