//! Quickstart: simulate a small cluster running a mixed workload under the
//! elastic scheduler and print the headline metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use elastisim::{SimConfig, Simulation};
use elastisim_platform::{NodeSpec, PlatformSpec};
use elastisim_sched::ElasticScheduler;
use elastisim_workload::WorkloadConfig;

fn main() {
    // A 32-node cluster of default nodes (2 Tflop/s, 100 Gbit NIC, burst
    // buffer), non-blocking network, default PFS.
    let platform = PlatformSpec::homogeneous("quickstart", 32, NodeSpec::default());

    // 100 jobs, half of them malleable, Poisson arrivals.
    let jobs = WorkloadConfig::new(100)
        .with_platform_nodes(32)
        .with_malleable_fraction(0.5)
        .with_seed(2022)
        .generate();

    let sim = Simulation::new(
        &platform,
        jobs,
        Box::new(ElasticScheduler::new()),
        SimConfig::default(),
    )
    .expect("workload fits the platform");

    let report = sim.run();
    let s = report.summary();

    println!("platform        : {} nodes", report.total_nodes);
    println!("jobs completed  : {}", s.completed);
    println!("jobs killed     : {}", s.killed);
    println!("makespan        : {:.0} s", s.makespan);
    println!("mean wait       : {:.0} s", s.mean_wait);
    println!("mean turnaround : {:.0} s", s.mean_turnaround);
    println!("mean bnd slowdown: {:.2}", s.mean_bounded_slowdown);
    println!("utilization     : {:.1} %", s.utilization * 100.0);
    println!("des events      : {}", report.events);
    println!("sched invocations: {}", report.scheduler_invocations);
    for w in &report.warnings {
        println!("warning: {w}");
    }
}
