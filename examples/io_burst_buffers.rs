//! I/O modeling: checkpoint-heavy jobs contending on the shared PFS versus
//! the same jobs using node-local burst buffers.
//!
//! Run with: `cargo run --release --example io_burst_buffers`

use elastisim::{SimConfig, Simulation};
use elastisim_platform::{NodeSpec, PlatformSpec};
use elastisim_sched::FcfsScheduler;
use elastisim_workload::{
    ApplicationModel, ArrivalProcess, IoTarget, JobSpec, PerfExpr, Phase, Task,
};

/// `count` identical checkpointing jobs of `nodes` nodes each.
fn workload(count: u64, nodes: u32, target: IoTarget) -> Vec<JobSpec> {
    (0..count)
        .map(|id| {
            let app = ApplicationModel::new(vec![Phase::repeated(
                "compute+ckpt",
                5,
                vec![
                    Task::compute("kernel", PerfExpr::constant(20.0 * 2e12)),
                    Task::write("checkpoint", PerfExpr::constant(25e9), target),
                ],
            )]);
            JobSpec::rigid(id, 0.0, nodes, app)
        })
        .collect()
}

fn run(count: u64, target: IoTarget) -> f64 {
    let platform = PlatformSpec::homogeneous("io-demo", 32, NodeSpec::default());
    Simulation::new(
        &platform,
        workload(count, 4, target),
        Box::new(FcfsScheduler::new()),
        SimConfig::default(),
    )
    .expect("valid workload")
    .run()
    .summary()
    .makespan
}

fn main() {
    let _ = ArrivalProcess::AllAtOnce; // (workload here is hand-built)
    println!(
        "{:>18} {:>14} {:>14} {:>10}",
        "concurrent jobs", "PFS makespan", "BB makespan", "PFS/BB"
    );
    for count in [1, 2, 4, 8] {
        let pfs = run(count, IoTarget::Pfs);
        let bb = run(count, IoTarget::BurstBuffer);
        println!("{count:>18} {pfs:>13.1}s {bb:>13.1}s {:>10.2}", pfs / bb);
    }
    println!("\nExpected shape: PFS makespan grows with job count (shared 50 GB/s");
    println!("write pool saturates); burst-buffer makespan stays flat because the");
    println!("bandwidth scales with the allocation.");
}
