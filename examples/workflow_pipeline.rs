//! A dependency-driven workflow: the classic simulation campaign shape —
//! one preprocessing job fans out into an ensemble of independent solver
//! members, which join into a single analysis job (`afterok` semantics, as
//! submitted with `sbatch --dependency=afterok:...` on real systems).
//!
//! Run with: `cargo run --release --example workflow_pipeline`

use elastisim::{SimConfig, Simulation};
use elastisim_platform::{NodeSpec, PlatformSpec};
use elastisim_sched::EasyBackfilling;
use elastisim_workload::{
    ApplicationModel, CommPattern, IoTarget, JobId, JobSpec, PerfExpr, Phase, Task,
};

fn main() {
    let platform = PlatformSpec::homogeneous("workflow-demo", 32, NodeSpec::default());

    let prep = ApplicationModel::new(vec![Phase::once(
        "prep",
        vec![
            Task::read("fetch", PerfExpr::constant(20e9), IoTarget::Pfs),
            Task::compute("mesh", PerfExpr::constant(120.0 * 2e12)),
            Task::write("partitions", PerfExpr::constant(10e9), IoTarget::Pfs),
        ],
    )]);

    let member = ApplicationModel::new(vec![
        Phase::once(
            "load",
            vec![Task::read(
                "partition",
                PerfExpr::constant(10e9),
                IoTarget::Pfs,
            )],
        ),
        Phase::repeated(
            "integrate",
            30,
            vec![
                Task::compute("step", PerfExpr::parse("6e13 / num_nodes").unwrap()),
                Task::comm("halo", PerfExpr::constant(128e6), CommPattern::Ring),
            ],
        ),
        Phase::once(
            "dump",
            vec![Task::write("state", PerfExpr::constant(8e9), IoTarget::Pfs)],
        ),
    ]);

    let analysis = ApplicationModel::new(vec![Phase::once(
        "analyze",
        vec![
            Task::read("ensemble", PerfExpr::constant(64e9), IoTarget::Pfs),
            Task::compute("statistics", PerfExpr::constant(300.0 * 2e12)),
        ],
    )]);

    let mut jobs = vec![JobSpec::rigid(0, 0.0, 4, prep)];
    let members = 6u64;
    for m in 1..=members {
        jobs.push(JobSpec::rigid(m, 0.0, 8, member.clone()).with_dependencies([0]));
    }
    jobs.push(JobSpec::rigid(members + 1, 0.0, 2, analysis).with_dependencies(1..=members));

    let report = Simulation::new(
        &platform,
        jobs,
        Box::new(EasyBackfilling::new()),
        SimConfig::default(),
    )
    .expect("valid workflow")
    .run();

    println!(
        "{:>10} {:>12} {:>10} {:>10}",
        "job", "start", "end", "nodes"
    );
    for j in &report.jobs {
        println!(
            "{:>10} {:>11.0}s {:>9.0}s {:>10}",
            j.id.to_string(),
            j.start.unwrap_or(f64::NAN),
            j.end.unwrap_or(f64::NAN),
            j.max_nodes_held
        );
    }
    let prep_end = report.job(JobId(0)).unwrap().end.unwrap();
    let analysis_start = report.job(JobId(members + 1)).unwrap().start.unwrap();
    println!("\nprep ends {prep_end:.0}s → members run (32 nodes can hold 4 of 6 at once)");
    println!("→ analysis starts {analysis_start:.0}s, after the last member.");
    println!("makespan: {:.0}s", report.summary().makespan);
}
