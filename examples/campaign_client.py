#!/usr/bin/env python3
"""Stdlib-only client for the `elastisim serve` campaign daemon.

Starts the daemon as a subprocess, speaks the JSON-lines protocol on its
stdin/stdout (one request per line, streamed replies), and demonstrates
the result cache: the same campaign submitted twice is answered the
second time entirely from cache, with byte-identical fingerprints and
without re-executing any scenario.

Usage:
    python3 examples/campaign_client.py [path/to/elastisim]

Exits non-zero if any protocol expectation fails, so CI can use it as an
integration check.
"""

import json
import subprocess
import sys

PROTOCOL_VERSION = 1


class ServeClient:
    """A tiny request/streaming-reply wrapper around the daemon's pipes."""

    def __init__(self, binary, workers=2):
        self.proc = subprocess.Popen(
            [binary, "serve", "--workers", str(workers)],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
        )
        self.seq = 0

    def request(self, command, **fields):
        """Sends one command; returns the list of replies it produced.

        Streaming commands (campaign) produce many replies; the terminal
        one is `campaign_done` (or `error`). Simple commands produce one.
        """
        self.seq += 1
        line = {"protocol": PROTOCOL_VERSION, "seq": self.seq, "command": command}
        line.update(fields)
        self.proc.stdin.write(json.dumps(line) + "\n")
        self.proc.stdin.flush()

        replies = []
        terminal = {"pong", "error", "campaign_done", "stats", "shutting_down"}
        while True:
            raw = self.proc.stdout.readline()
            if not raw:
                raise RuntimeError("daemon closed its stdout mid-request")
            reply = json.loads(raw)
            assert reply["protocol"] == PROTOCOL_VERSION, reply
            assert reply["seq"] == self.seq, reply
            replies.append(reply)
            if reply["msg"] in terminal:
                return replies

    def close(self):
        self.proc.stdin.close()
        self.proc.wait(timeout=30)


def run_campaign(client, label):
    replies = client.request(
        "campaign",
        seeds={"start": 0, "end": 10},
        schedulers=["fcfs", "elastic"],
    )
    accepted, progress, done = replies[0], replies[1:-1], replies[-1]
    assert accepted["msg"] == "campaign_accepted" and accepted["runs"] == 20, accepted
    assert done["msg"] == "campaign_done", done

    finished = [r for r in progress if r["msg"] == "run_finished"]
    assert len(finished) == 20, f"expected 20 run_finished lines, got {len(finished)}"
    assert all(r["ok"] for r in finished), "a scenario failed"
    print(f"{label}: {done['runs']} runs, "
          f"{done['cache_hits']} cache hits, "
          f"{done['wall_seconds']:.3f} s wall")
    for row in done["summary"]:
        print(f"    {row['scheduler']:<10} "
              f"makespan {row['mean_makespan']:8.1f} s   "
              f"utilization {100 * row['mean_utilization']:5.1f} %   "
              f"mean wait {row['mean_wait']:6.1f} s")
    # id -> scenario fingerprint, for cross-submission comparison.
    return done, {r["id"]: r["fingerprint"] for r in finished}


def main():
    binary = sys.argv[1] if len(sys.argv) > 1 else "target/release/elastisim"
    client = ServeClient(binary)
    try:
        (pong,) = client.request("ping")
        assert pong["msg"] == "pong", pong
        print("daemon is up")

        first_done, first_fps = run_campaign(client, "first submission")
        assert first_done["cache_hits"] == 0, first_done

        second_done, second_fps = run_campaign(client, "second submission")
        assert second_done["cache_hits"] == second_done["runs"], (
            "resubmission must be answered entirely from cache: %r" % second_done)
        assert first_fps == second_fps, "fingerprints diverged across submissions"
        print("cache verified: resubmission re-executed nothing")

        (stats,) = client.request("stats")
        assert stats["msg"] == "stats", stats
        assert stats["campaigns"] == 2 and stats["cache_hits"] >= 20, stats
        print(f"daemon stats: {stats['campaigns']} campaigns, "
              f"{stats['runs']} runs, {stats['cache_entries']} cached scenarios")

        (bye,) = client.request("shutdown")
        assert bye["msg"] == "shutting_down", bye
    finally:
        client.close()
    print("OK")


if __name__ == "__main__":
    main()
