//! An evolving application: a coupled simulation whose resource demand
//! changes between phases (pre-processing on few nodes, a wide solve, a
//! narrow post-processing step). The application *asks* for nodes; the
//! scheduler grants when it can. We print the allocation trace and the
//! request-satisfaction latencies — the evolving-jobs metric.
//!
//! Run with: `cargo run --release --example evolving_workflow`

use elastisim::{gantt_csv, ReconfigCost, SimConfig, Simulation};
use elastisim_platform::{NodeSpec, PlatformSpec};
use elastisim_sched::ElasticScheduler;
use elastisim_workload::{ApplicationModel, CommPattern, IoTarget, JobSpec, PerfExpr, Phase, Task};

fn main() {
    let platform = PlatformSpec::homogeneous("evolving-demo", 16, NodeSpec::default());

    // Pre-process on 2 nodes, solve wide on 12, post-process on 4.
    let coupled_app = ApplicationModel::new(vec![
        Phase::once(
            "pre-process",
            vec![
                Task::read("stage-in", PerfExpr::constant(10e9), IoTarget::Pfs),
                Task::compute("decompose", PerfExpr::constant(4e12)),
            ],
        ),
        Phase::repeated(
            "solve",
            20,
            vec![
                Task::compute("kernel", PerfExpr::parse("4e13 / num_nodes").unwrap()),
                Task::comm("halo", PerfExpr::constant(256e6), CommPattern::Ring),
            ],
        )
        .with_evolving_request(12),
        Phase::once(
            "post-process",
            vec![
                Task::comm("gather", PerfExpr::constant(1e9), CommPattern::Gather),
                Task::write("results", PerfExpr::constant(20e9), IoTarget::Pfs),
            ],
        )
        .with_evolving_request(4),
    ]);

    // A rigid neighbour occupies part of the machine for a while, so the
    // wide request has to wait.
    let jobs = vec![
        JobSpec::evolving(0, 0.0, 2, 2, 12, coupled_app),
        JobSpec::rigid(
            1,
            0.0,
            8,
            ApplicationModel::new(vec![Phase::once(
                "filler",
                vec![Task::compute("busy", PerfExpr::constant(60.0 * 2e12))],
            )]),
        ),
    ];

    let report = Simulation::new(
        &platform,
        jobs,
        Box::new(ElasticScheduler::new()),
        SimConfig::default().with_reconfig_cost(ReconfigCost::DataVolume {
            bytes_per_node: 2e9,
        }),
    )
    .expect("valid workload")
    .run();

    let j = report.job(elastisim_workload::JobId(0)).unwrap();
    println!("evolving job:");
    println!("  started   : {:.1} s", j.start.unwrap());
    println!("  finished  : {:.1} s", j.end.unwrap());
    println!("  reconfigs : {}", j.reconfigs);
    println!("  max nodes : {}", j.max_nodes_held);
    println!(
        "  request satisfaction latencies: {:?}",
        j.evolving_latencies
            .iter()
            .map(|l| format!("{l:.1}s"))
            .collect::<Vec<_>>()
    );

    println!("\nallocation trace (gantt csv, first rows):");
    for line in gantt_csv(&report).lines().take(12) {
        println!("  {line}");
    }
}
