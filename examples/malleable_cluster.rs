//! The headline ElastiSim scenario: the same workload with an increasing
//! share of malleable jobs, scheduled elastically. With a fragmenting size
//! mix (non-power-of-two requests), makespan, waits, slowdown and
//! utilization all improve monotonically with the malleable share.
//!
//! Run with: `cargo run --release --example malleable_cluster`

use elastisim::{ReconfigCost, SimConfig, Simulation};
use elastisim_platform::{NodeSpec, PlatformSpec};
use elastisim_sched::ElasticScheduler;
use elastisim_workload::{SizeDistribution, WorkloadConfig};

fn main() {
    let nodes = 64;
    let platform = PlatformSpec::homogeneous("malleable-demo", nodes, NodeSpec::default());

    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "malleable", "makespan", "mean wait", "mean tat", "slowdown", "util"
    );
    println!(
        "{:->10} {:->12} {:->12} {:->12} {:->10} {:->8}",
        "", "", "", "", "", ""
    );

    for pct in [0, 25, 50, 75, 100] {
        let jobs = WorkloadConfig::new(150)
            .with_platform_nodes(nodes as u32)
            .with_malleable_fraction(pct as f64 / 100.0)
            // Non-power-of-two requests fragment a rigid schedule; this is
            // where malleability pays.
            .with_sizes(SizeDistribution::Uniform { min: 3, max: 44 })
            .with_seed(7)
            .generate();
        let report = Simulation::new(
            &platform,
            jobs,
            Box::new(ElasticScheduler::new()),
            SimConfig::default().with_reconfig_cost(ReconfigCost::Fixed(5.0)),
        )
        .expect("valid workload")
        .run();
        let s = report.summary();
        println!(
            "{:>9}% {:>11.0}s {:>11.0}s {:>11.0}s {:>10.2} {:>7.1}%",
            pct,
            s.makespan,
            s.mean_wait,
            s.mean_turnaround,
            s.mean_bounded_slowdown,
            s.utilization * 100.0
        );
    }
    println!("\nExpected shape: every metric improves as the malleable share grows;");
    println!("mean bounded slowdown roughly halves from 0% to 100% malleable.");
}
