//! Writing your own scheduling algorithm — the ElastiSim use case: the
//! simulator is a harness for *evaluating scheduling algorithms*, so the
//! `Scheduler` trait is the main extension point (the original exposes the
//! same interface to Python over ZeroMQ).
//!
//! This example implements Smallest-Job-First with starvation protection
//! and compares it against FCFS and EASY on the same workload.
//!
//! Run with: `cargo run --release --example custom_scheduler`

use elastisim::{SimConfig, Simulation};
use elastisim_platform::PlatformSpec;
use elastisim_sched::{
    Decision, EasyBackfilling, FcfsScheduler, Invocation, NodeSet, Scheduler, SystemView,
};
use elastisim_workload::WorkloadConfig;

/// Smallest-Job-First: order the queue by requested size, but never let a
/// job wait more than `max_wait` seconds — starved jobs jump to the front.
struct SmallestJobFirst {
    max_wait: f64,
}

impl Scheduler for SmallestJobFirst {
    fn name(&self) -> &'static str {
        "smallest-job-first"
    }

    fn schedule(&mut self, view: &SystemView, _why: Invocation) -> Vec<Decision> {
        let mut queue = view.queue();
        queue.sort_by(|a, b| {
            let a_starved = view.now - a.submit_time > self.max_wait;
            let b_starved = view.now - b.submit_time > self.max_wait;
            b_starved
                .cmp(&a_starved) // starved first
                .then(a.min_nodes.cmp(&b.min_nodes)) // then smallest
                .then(a.id.cmp(&b.id))
        });
        let mut free = NodeSet::new(&view.free_nodes);
        let mut out = Vec::new();
        for job in queue {
            if let Some(size) = job.start_size(free.available()) {
                let nodes = free.take(size).expect("size checked");
                out.push(Decision::Start { job: job.id, nodes });
            }
            // Unlike FCFS we keep going: SJF packs whatever fits.
        }
        out
    }
}

fn run(name: &str, scheduler: Box<dyn Scheduler>) {
    let platform = PlatformSpec::homogeneous("sched-demo", 32, Default::default());
    let jobs = WorkloadConfig::new(120)
        .with_platform_nodes(32)
        .with_seed(5)
        .generate();
    let report = Simulation::new(&platform, jobs, scheduler, SimConfig::default())
        .expect("valid workload")
        .run();
    let s = report.summary();
    println!(
        "{name:>20}: makespan {:>8.0}s  mean wait {:>7.0}s  mean slowdown {:>6.2}  util {:>5.1}%",
        s.makespan,
        s.mean_wait,
        s.mean_bounded_slowdown,
        s.utilization * 100.0
    );
}

fn main() {
    run("fcfs", Box::new(FcfsScheduler::new()));
    run("easy-backfilling", Box::new(EasyBackfilling::new()));
    run(
        "smallest-job-first",
        Box::new(SmallestJobFirst { max_wait: 3600.0 }),
    );
}
