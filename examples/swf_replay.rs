//! Replaying a real-world-style trace: parse a Standard Workload Format
//! (SWF) fragment, convert it to rigid jobs, and compare how FCFS and EASY
//! backfilling schedule it.
//!
//! SWF is the format of the Parallel Workloads Archive; any of its traces
//! can be fed through this path (`elastisim run --jobs trace.swf` does the
//! same from the command line).
//!
//! Run with: `cargo run --release --example swf_replay`

use elastisim::{SimConfig, Simulation};
use elastisim_platform::{NodeSpec, PlatformSpec};
use elastisim_sched::{by_name, SCHEDULER_NAMES};
use elastisim_workload::parse_swf;

/// A hand-made trace fragment in SWF's 18-column format: job id, submit,
/// wait, runtime, procs, … requested-procs, requested-time, … status, …
const TRACE: &str = "\
; fragment in Standard Workload Format
1  0    0 3600  8 -1 -1  8  7200 -1 1 1 1 -1 1 -1 -1 -1
2  60   0 1800 16 -1 -1 16  3600 -1 1 1 1 -1 1 -1 -1 -1
3  120  0  600  4 -1 -1  4  1200 -1 1 1 1 -1 1 -1 -1 -1
4  180  0 7200 24 -1 -1 24 10800 -1 1 1 1 -1 1 -1 -1 -1
5  240  0  300  2 -1 -1  2   600 -1 1 1 1 -1 1 -1 -1 -1
6  300  0 1200  8 -1 -1  8  2400 -1 1 1 1 -1 1 -1 -1 -1
7  360  0  900 12 -1 -1 12  1800 -1 1 1 1 -1 1 -1 -1 -1
8  420  0 2400  6 -1 -1  6  4800 -1 1 1 1 -1 1 -1 -1 -1
9  480  0  450  2 -1 -1  2   900 -1 1 1 1 -1 1 -1 -1 -1
10 540  0 5400 16 -1 -1 16  7200 -1 1 1 1 -1 1 -1 -1 -1
";

fn main() {
    let node = NodeSpec::default();
    let platform = PlatformSpec::homogeneous("swf-demo", 32, node.clone());
    let trace = parse_swf(TRACE).expect("valid SWF");
    println!(
        "replaying {} jobs ({} proc-hours) on a 32-node machine\n",
        trace.len(),
        trace
            .iter()
            .map(|j| j.runtime * j.procs as f64)
            .sum::<f64>()
            / 3600.0
    );

    println!(
        "{:>24} {:>12} {:>12} {:>10} {:>8}",
        "scheduler", "makespan", "mean wait", "slowdown", "util"
    );
    for name in SCHEDULER_NAMES {
        let jobs: Vec<_> = trace.iter().map(|j| j.to_job_spec(node.flops, 1)).collect();
        let report = Simulation::new(
            &platform,
            jobs,
            by_name(name).unwrap(),
            SimConfig::default(),
        )
        .expect("trace fits platform")
        .run();
        let s = report.summary();
        println!(
            "{name:>24} {:>11.0}s {:>11.0}s {:>10.2} {:>7.1}%",
            s.makespan,
            s.mean_wait,
            s.mean_bounded_slowdown,
            s.utilization * 100.0
        );
    }
    println!("\nRecorded runtimes are reproduced exactly (rigid replay); only the");
    println!("queueing differs between algorithms.");
}
