//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this crate vendors the
//! subset of the criterion 0.5 API the workspace benches use: benchmark
//! groups, [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: every closure is warmed up, then run in batches until
//! a target measurement time (~1 s per benchmark, configurable via
//! `sample_size` only in the sense that smaller sizes shorten the run) and
//! the mean/median/min per-iteration wall time is printed as
//! `name ... time: [min mean median]`. No statistics beyond that — the
//! numbers are for relative before/after comparisons on one machine, which
//! is exactly how the workspace uses them.

// Vendored stand-in: exempt from the workspace lint policy.
#![allow(clippy::all, dead_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, preventing the optimizer from deleting benched
/// work. Re-exported name-compatible with criterion.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, printed `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id (plain strings or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; runs the measured routine.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher<'_> {
    /// Measures `routine`, recording per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that takes
        // ~10 ms per sample so Instant overhead vanishes.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || iters >= 1 << 30 {
                break;
            }
            iters = if elapsed.is_zero() {
                iters * 128
            } else {
                let scale = Duration::from_millis(12).as_nanos() as u64
                    / (elapsed.as_nanos() as u64).max(1);
                (iters * scale.clamp(2, 128)).max(iters + 1)
            };
        }
        self.iters_per_sample = iters;
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_count: usize,
}

impl BenchmarkGroup<'_> {
    /// Reduces or raises how many timed samples are collected.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        self.criterion.run_one(&full, self.sample_count, |b| f(b));
        self
    }

    /// Benchmarks `f` under `id`, handing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        self.criterion
            .run_one(&full, self.sample_count, |b| f(b, input));
        self
    }

    /// Ends the group (printing already happened per-bench).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    default_samples: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 20,
            filter: None,
        }
    }
}

impl Criterion {
    /// Applies command-line arguments (`cargo bench -- <filter>`); harness
    /// flags cargo passes (`--bench`, `--test`) are ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" | "--nocapture" | "--quiet" => {}
                "--sample-size" => {
                    if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                        self.default_samples = n;
                    }
                }
                s if s.starts_with("--") => {
                    // Unknown harness flag: skip (and its value if given
                    // separately as `--flag value`).
                }
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.default_samples;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_count: samples,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = id.into_id();
        let samples = self.default_samples;
        self.run_one(&full, samples, |b| f(b));
        self
    }

    fn run_one<F: FnMut(&mut Bencher<'_>)>(&mut self, name: &str, samples: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut durations = Vec::with_capacity(samples);
        let mut bencher = Bencher {
            samples: &mut durations,
            iters_per_sample: 0,
            sample_count: samples,
        };
        f(&mut bencher);
        let iters = bencher.iters_per_sample;
        if durations.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        durations.sort_unstable();
        let min = durations[0];
        let median = durations[durations.len() / 2];
        let mean = durations.iter().sum::<Duration>() / durations.len() as u32;
        println!(
            "{name:<50} time: [{} {} {}] ({} samples x {} iters)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(median),
            durations.len(),
            iters,
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function, criterion-compatible.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-compatible.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_render() {
        assert_eq!(BenchmarkId::new("solver", 64).into_id(), "solver/64");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
    }

    #[test]
    fn bencher_runs_and_records() {
        let mut c = Criterion {
            default_samples: 3,
            filter: None,
        };
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(2)
                .bench_function("noop", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            default_samples: 2,
            filter: Some("zzz".into()),
        };
        let mut ran = false;
        c.bench_function("abc", |b| b.iter(|| ran = true));
        assert!(!ran);
    }
}
