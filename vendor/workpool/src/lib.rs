//! A minimal work-stealing thread pool for index-addressed task batches.
//!
//! Offline vendored stand-in (same policy as the `rand`/`proptest`
//! stand-ins: no crates.io access, so the workspace resolves entirely from
//! local paths). The API is deliberately tiny and tailored to the flow
//! engine's needs:
//!
//! * [`Pool::run`] executes one *batch* of `n` tasks, identified by index
//!   `0..n`, by calling a shared closure `f(i)` once per index. The call
//!   blocks until every task has run; the calling thread participates in
//!   the work, so a pool built with `threads = 1` spawns no workers and
//!   degenerates to a plain serial loop.
//! * Tasks are distributed as contiguous index ranges, one per
//!   participant, packed into a single `AtomicU64` each (`lo` in the high
//!   half, `hi` in the low half). An owner claims indices one at a time
//!   from the front (CAS `lo += 1`); an idle participant *steals half* of
//!   a victim's remaining range from the back (CAS `hi -= take`),
//!   republishes the stolen range as its own, and drains it — so stolen
//!   work is itself re-stealable and load balances recursively.
//! * No allocation per task and none per batch beyond what the caller's
//!   closure captures: the closure is passed by reference and shared by
//!   all participants via a type-erased pointer that never outlives the
//!   `run` call.
//! * A panicking task does not tear down the pool: the first panic payload
//!   is captured, the remaining tasks still run, and the payload is
//!   resumed on the calling thread after the batch completes.
//!
//! Batches are serialized: concurrent `run` calls from different threads
//! queue behind an internal lock. `run` is **not reentrant** — calling it
//! from inside a task deadlocks.
//!
//! ## Why the barrier is quiescence, not a task counter
//!
//! `run` hands workers a borrowed closure, so it must not return (and the
//! next batch must not start) while any worker could still dereference
//! the closure pointer or observe the batch's index ranges. The pool
//! therefore tracks an *idle worker count* under the state mutex: workers
//! decrement it when they pick up a batch and increment it when they run
//! out of stealable work, and `run` returns only once every worker is
//! parked again. That quiescence point implies all ranges are empty and
//! no task is in flight, and the mutex hand-off makes every task's writes
//! visible to the caller. A fast caller can even drain the whole batch
//! before a worker wakes; workers detect the cleared task slot and stay
//! parked rather than touching a finished batch.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Type-erased pointer to the batch closure. The pointee is `Sync` (shared
/// by all participants) and guaranteed by `Pool::run`'s quiescence barrier
/// to outlive every dereference, which is what makes the `Send` claim and
/// the lifetime erasure sound.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync + 'static));
unsafe impl Send for TaskPtr {}

/// Batch state shared under one mutex.
struct BatchState {
    /// Bumped once per batch; workers compare against their last seen
    /// value to detect new work.
    epoch: u64,
    /// The current batch's closure; `None` between batches (and the
    /// "batch already drained" signal for late-waking workers).
    task: Option<TaskPtr>,
    /// Workers currently parked waiting for a batch.
    idle: usize,
    /// First panic payload captured from a task, resumed on the caller.
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct Inner {
    state: Mutex<BatchState>,
    /// Workers wait here for a new batch (or shutdown).
    work_ready: Condvar,
    /// The caller waits here for all workers to park.
    all_idle: Condvar,
    /// One packed `lo:hi` index range per participant; slot 0 belongs to
    /// the calling thread.
    ranges: Vec<AtomicU64>,
    /// Cumulative count of stolen task indices (telemetry).
    stolen: AtomicU64,
}

#[inline]
fn pack(lo: u32, hi: u32) -> u64 {
    ((lo as u64) << 32) | hi as u64
}

#[inline]
fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// Recover from mutex poisoning: the pool's own invariants do not depend
/// on the poisoned flag (task panics are caught before they can unwind
/// through a locked section), and panicking in `Drop` would abort.
fn lock(m: &Mutex<BatchState>) -> MutexGuard<'_, BatchState> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fixed-size work-stealing pool. See the crate docs for semantics.
pub struct Pool {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    /// Serializes whole batches (run-to-run mutual exclusion).
    batch_lock: Mutex<()>,
}

impl Pool {
    /// Creates a pool with `threads` total participants **including the
    /// calling thread**: `threads - 1` workers are spawned. `threads` is
    /// clamped to at least 1; with exactly 1, `run` executes inline with
    /// no synchronization at all.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(BatchState {
                epoch: 0,
                task: None,
                idle: 0,
                panic: None,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            all_idle: Condvar::new(),
            ranges: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            stolen: AtomicU64::new(0),
        });
        let workers = (1..threads)
            .filter_map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("workpool-{i}"))
                    .spawn(move || worker_loop(&inner, i))
                    .ok() // spawn failure degrades to fewer participants
            })
            .collect();
        Pool {
            inner,
            workers,
            batch_lock: Mutex::new(()),
        }
    }

    /// Total participants (spawned workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Cumulative number of task indices moved by steals.
    pub fn stolen(&self) -> u64 {
        self.inner.stolen.load(Ordering::Relaxed)
    }

    /// Runs one batch: `f(i)` is called exactly once for every `i` in
    /// `0..tasks`, concurrently across the participants, and the call
    /// returns once all of them completed. If any task panicked, the
    /// first captured payload is resumed here after the batch finishes.
    pub fn run(&self, tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        if self.workers.is_empty() || tasks == 1 {
            // Serial fast path: no atomics, no handshake; panics propagate
            // directly from the task like a plain loop.
            for i in 0..tasks {
                f(i);
            }
            return;
        }
        let _batch = self.batch_lock.lock().unwrap_or_else(|e| e.into_inner());
        let participants = self.workers.len() + 1;
        debug_assert!(tasks <= u32::MAX as usize, "batch too large");
        let chunk = tasks.div_ceil(participants);
        for (p, range) in self.inner.ranges.iter().enumerate() {
            let lo = (p * chunk).min(tasks);
            let hi = ((p + 1) * chunk).min(tasks);
            range.store(pack(lo as u32, hi as u32), Ordering::Relaxed);
        }
        // Erase the closure's lifetime; the quiescence barrier below keeps
        // every dereference inside this call's extent.
        let ptr: TaskPtr = TaskPtr(unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                f as *const (dyn Fn(usize) + Sync),
            )
        });
        {
            let mut state = lock(&self.inner.state);
            state.task = Some(ptr);
            state.epoch += 1;
            self.inner.work_ready.notify_all();
        }
        // The caller is participant 0.
        work(&self.inner, 0, f);
        let mut state = lock(&self.inner.state);
        while state.idle != self.workers.len() {
            state = self
                .inner
                .all_idle
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
        state.task = None;
        let panic = state.panic.take();
        drop(state);
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut state = lock(&self.inner.state);
            state.shutdown = true;
            self.inner.work_ready.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &Inner, me: usize) {
    let mut seen = 0u64;
    let mut state = lock(&inner.state);
    state.idle += 1;
    inner.all_idle.notify_all();
    loop {
        while !state.shutdown && (state.epoch == seen || state.task.is_none()) {
            // A cleared task slot with a fresh epoch means the caller
            // drained the batch before we woke: acknowledge and stay
            // parked.
            seen = state.epoch;
            state = inner
                .work_ready
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
        if state.shutdown {
            return;
        }
        seen = state.epoch;
        let TaskPtr(ptr) = state.task.expect("task set while batch active");
        state.idle -= 1;
        drop(state);
        work(inner, me, unsafe { &*ptr });
        state = lock(&inner.state);
        state.idle += 1;
        inner.all_idle.notify_all();
    }
}

/// Drain own range, then steal until no participant has work left.
fn work(inner: &Inner, me: usize, f: &(dyn Fn(usize) + Sync)) {
    loop {
        while let Some(i) = claim(&inner.ranges[me]) {
            run_one(inner, f, i);
        }
        if !steal(inner, me) {
            return;
        }
    }
}

/// Claim the next index from the front of a range.
fn claim(range: &AtomicU64) -> Option<usize> {
    let mut cur = range.load(Ordering::Acquire);
    loop {
        let (lo, hi) = unpack(cur);
        if lo >= hi {
            return None;
        }
        match range.compare_exchange_weak(
            cur,
            pack(lo + 1, hi),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return Some(lo as usize),
            Err(actual) => cur = actual,
        }
    }
}

/// Steal half of some victim's remaining range (rounded up) from the back
/// and republish it as `me`'s own range. Returns whether anything was
/// stolen.
fn steal(inner: &Inner, me: usize) -> bool {
    let n = inner.ranges.len();
    for off in 1..n {
        let victim = &inner.ranges[(me + off) % n];
        let mut cur = victim.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                break;
            }
            let take = (hi - lo).div_ceil(2);
            match victim.compare_exchange_weak(
                cur,
                pack(lo, hi - take),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    inner.stolen.fetch_add(take as u64, Ordering::Relaxed);
                    // Own range is empty (only the owner publishes to it
                    // while empty), so a plain store cannot lose updates.
                    inner.ranges[me].store(pack(hi - take, hi), Ordering::Release);
                    return true;
                }
                Err(actual) => cur = actual,
            }
        }
    }
    false
}

fn run_one(inner: &Inner, f: &(dyn Fn(usize) + Sync), i: usize) {
    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(i))) {
        let mut state = lock(&inner.state);
        if state.panic.is_none() {
            state.panic = Some(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn counts_every_index(pool: &Pool, tasks: usize) {
        let hits: Vec<AtomicUsize> = (0..tasks).map(|_| AtomicUsize::new(0)).collect();
        pool.run(tasks, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "task {i} ran wrong count");
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            for tasks in [0, 1, 2, 7, 64, 1000] {
                counts_every_index(&pool, tasks);
            }
        }
    }

    #[test]
    fn results_are_writable_through_disjoint_slices() {
        // The intended flow-engine usage: tasks write disjoint output
        // ranges; the quiescence barrier makes the writes visible.
        let pool = Pool::new(4);
        let n = 4096;
        let out: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        pool.run(n, &|i| out[i].store((i as u64) * 3 + 1, Ordering::Relaxed));
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.load(Ordering::Relaxed), (i as u64) * 3 + 1);
        }
    }

    #[test]
    fn unbalanced_batches_get_stolen() {
        // One enormous range plus tiny ones: with skewed per-task cost the
        // idle participants must steal. (Steals are timing-dependent, so
        // drive many batches and require that *some* steal happened.)
        let pool = Pool::new(4);
        if pool.threads() < 2 {
            return; // spawn-degraded environment: nothing to assert
        }
        let spin = |i: usize| {
            // Front-loaded cost: participant 0's range is the expensive one.
            let iters = if i < 64 { 20_000 } else { 1 };
            let mut acc = 0u64;
            for k in 0..iters {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            assert!(acc != 1, "keep the loop from optimizing away");
        };
        for _ in 0..50 {
            pool.run(256, &spin);
        }
        assert!(pool.stolen() > 0, "no steals across 50 skewed batches");
    }

    #[test]
    fn panicking_task_is_isolated_and_resumed() {
        let pool = Pool::new(4);
        let done = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(100, &|i| {
                if i == 17 {
                    panic!("task 17 exploded");
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }));
        let payload = result.expect_err("panic must propagate to the caller");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "task 17 exploded");
        // Every non-panicking task still ran.
        assert_eq!(done.load(Ordering::Relaxed), 99);
        // And the pool survives for the next batch.
        counts_every_index(&pool, 64);
    }

    #[test]
    fn spawn_steal_shutdown_churn() {
        // Pools created and dropped in a loop, each driving several
        // batches with tasks that yield to force interleavings around the
        // wake/park handshake.
        for round in 0..30 {
            let pool = Pool::new(1 + round % 5);
            let sum = AtomicU64::new(0);
            for batch in 0..10usize {
                let n = 1 + (round * 7 + batch * 13) % 97;
                pool.run(n, &|i| {
                    if (i + batch) % 3 == 0 {
                        std::thread::yield_now();
                    }
                    sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
                });
            }
            drop(pool); // explicit: joins all workers
            assert!(sum.load(Ordering::Relaxed) > 0);
        }
    }

    #[test]
    fn fast_caller_can_drain_before_workers_wake() {
        // Tiny batches back-to-back: the caller frequently finishes the
        // whole batch before any worker wakes, exercising the
        // cleared-task-slot path in the worker loop.
        let pool = Pool::new(8);
        for _ in 0..2000 {
            counts_every_index(&pool, 2);
        }
    }

    #[test]
    fn serialized_batches_from_many_threads() {
        // Concurrent run() calls queue behind the batch lock; every batch
        // still executes all its tasks exactly once.
        let pool = Arc::new(Pool::new(3));
        let total = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        pool.run(40, &|_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 4 * 25 * 40);
    }
}
