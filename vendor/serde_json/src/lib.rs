//! Offline stand-in for `serde_json`, layered on the vendored `serde`
//! [`Value`] model.
//!
//! Provides [`to_string`], [`to_string_pretty`], [`from_str`], and
//! [`Error`]. Floats print via Rust's shortest-round-trip `Display`, so
//! serialize → deserialize reproduces every finite `f64` bit-for-bit
//! (the property the workspace's `float_roundtrip` feature selection
//! asks for). Non-finite floats serialize as `null`, matching upstream.

// Vendored stand-in: exempt from the workspace lint policy.
#![allow(clippy::all, dead_code)]
#![warn(missing_docs)]

use std::fmt::{self, Display, Write as _};

use serde::{DeserializeOwned, Serialize, Value};

/// JSON (de)serialization error: a message plus, for parse errors, the
/// 1-based line/column where the input went wrong.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    line: usize,
    column: usize,
}

impl Error {
    fn msg(msg: impl Into<String>) -> Self {
        Error {
            msg: msg.into(),
            line: 0,
            column: 0,
        }
    }
}

impl Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{} at line {} column {}",
                self.msg, self.line, self.column
            )
        } else {
            f.write_str(&self.msg)
        }
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error::msg(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error::msg(msg.to_string())
    }
}

/// Result alias matching upstream.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent.map(|d| d + 1));
                write_value(out, item, indent.map(|d| d + 1));
            }
            newline_indent(out, indent);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent.map(|d| d + 1));
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent.map(|d| d + 1));
            }
            newline_indent(out, indent);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

/// Serializes to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let v = serde::to_value(value).map_err(|e| Error::msg(e.to_string()))?;
    let mut out = String::new();
    write_value(&mut out, &v, None);
    Ok(out)
}

/// Serializes to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let v = serde::to_value(value).map_err(|e| Error::msg(e.to_string()))?;
    let mut out = String::new();
    write_value(&mut out, &v, Some(0));
    Ok(out)
}

// ---------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: impl Into<String>) -> Error {
        let consumed = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = consumed.iter().filter(|&&b| b == b'\n').count() + 1;
        let column = consumed.iter().rev().take_while(|&&b| b != b'\n').count() + 1;
        Error {
            msg: msg.into(),
            line,
            column,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> std::result::Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> std::result::Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.error(format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self) -> std::result::Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.error(format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> std::result::Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs: JSON encodes astral chars as
                            // two \u escapes.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                self.eat_keyword("\\u")?;
                                let hex2 = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| self.error("bad surrogate pair"))?;
                                let low = std::str::from_utf8(hex2)
                                    .ok()
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .ok_or_else(|| self.error("bad surrogate pair"))?;
                                self.pos += 4;
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(ch)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?,
                            );
                        }
                        c => {
                            return Err(self.error(format!("bad escape `\\{}`", c as char)));
                        }
                    }
                }
                Some(_) => {
                    // Advance one UTF-8 char, not one byte.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> std::result::Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> std::result::Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> std::result::Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(v)
}

struct JsonDeserializer(Value);

impl<'de> serde::Deserializer<'de> for JsonDeserializer {
    type Error = Error;
    fn take_value(self) -> Result<Value> {
        Ok(self.0)
    }
}

/// Deserializes a value from JSON text.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let v = parse_value(s)?;
    T::deserialize(JsonDeserializer(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-1.5f64).unwrap(), "-1.5");
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<f64>("-1.5").unwrap(), -1.5);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn float_bits_roundtrip() {
        for &v in &[
            0.1,
            1.0 / 3.0,
            2e-6,
            12.5e9,
            f64::MIN_POSITIVE,
            6.02214076e23,
        ] {
            let s = to_string(&v).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} -> {s} -> {back}");
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&s).unwrap(), v);
    }

    #[test]
    fn pretty_indents_two_spaces() {
        let v = Value::Map(vec![
            ("a".into(), Value::Num(1.0)),
            ("b".into(), Value::Seq(vec![Value::Bool(true)])),
        ]);
        let mut out = String::new();
        super::write_value(&mut out, &v, Some(0));
        assert_eq!(out, "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
    }

    #[test]
    fn parse_errors_have_position() {
        let err = from_str::<bool>("[1, 2").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("line 1"), "{text}");
        assert!(from_str::<bool>("truex").is_err());
        assert!(from_str::<Vec<f64>>("[1,]").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>(r#""é😀""#).unwrap(), "é😀");
    }
}
