//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no crates.io access, so this crate vendors the
//! subset of the proptest 1.x API the workspace tests use: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `prop_recursive`, range, tuple,
//! collection, option, and mini-regex string strategies, the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_oneof!`]
//! macros, and [`test_runner::Config`].
//!
//! Differences from upstream: generation is purely random with a
//! deterministic per-test seed (derived from the test's module path and the
//! case index) and there is **no shrinking** — a failing case reports its
//! case number, which reproduces exactly on re-run. That trade keeps the
//! vendored crate small while preserving the regression-catching value of
//! the property suites.

// Vendored stand-in: exempt from the workspace lint policy.
#![allow(clippy::all, dead_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic generator handed to strategies (xoshiro256++).
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds the RNG for one test case; the stream depends only on
    /// `(name, case)` so failures reproduce across runs.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut sm = h ^ ((case as u64) << 32) ^ 0x9E3779B97F4A7C15;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

// ---------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case; `f` receives
    /// the strategy for the level below and returns the branch case.
    /// `_desired_size` / `_expected_branch` are accepted for API
    /// compatibility; recursion depth is bounded by `depth`.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        let mut level = self.boxed();
        let leaf = level.clone();
        for _ in 0..depth {
            // Each level flips between the leaf and one more branch layer,
            // giving trees of varied depth up to `depth`.
            level = Union::new(vec![(1, leaf.clone()), (2, f(level).boxed())]).boxed();
        }
        Recursive { top: level }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    top: BoxedStrategy<T>,
}

impl<T> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.top.generate(rng)
    }
}

/// Weighted union of strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "empty prop_oneof!");
        assert!(arms.iter().any(|(w, _)| *w > 0), "all weights zero");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------
// Range / tuple / primitive strategies
// ---------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + (hi - lo) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Mini-regex string strategy: `&'static str` patterns composed of literal
/// characters and character classes (`[a-z_]`), each optionally repeated
/// with `{n}`, `{n,m}`, `?`, `*` (≤8), or `+` (≤8). Covers the patterns the
/// workspace tests use (e.g. `"[ -~]{0,64}"`).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let alternatives: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unclosed [ in pattern")
                    + i;
                let mut alts = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        assert!(lo <= hi, "bad class range in pattern");
                        alts.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        alts.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                alts
            } else {
                let c = if chars[i] == '\\' {
                    i += 1;
                    chars[i]
                } else {
                    chars[i]
                };
                i += 1;
                vec![c]
            };
            // Optional repetition suffix.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed {{ in pattern")
                    + i;
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("bad repeat lower bound"),
                        b.trim().parse().expect("bad repeat upper bound"),
                    ),
                    None => {
                        let n: usize = spec.trim().parse().expect("bad repeat count");
                        (n, n)
                    }
                }
            } else if i < chars.len() && chars[i] == '?' {
                i += 1;
                (0, 1)
            } else if i < chars.len() && chars[i] == '*' {
                i += 1;
                (0, 8)
            } else if i < chars.len() && chars[i] == '+' {
                i += 1;
                (1, 8)
            } else {
                (1, 1)
            };
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                out.push(alternatives[rng.below(alternatives.len() as u64) as usize]);
            }
        }
        out
    }
}

/// Types with a canonical "anything" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// The strategy type [`any`] returns.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for primitives.
pub struct AnyPrim<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_prim {
    ($($t:ty => $gen:expr),* $(,)?) => {$(
        impl Strategy for AnyPrim<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $gen;
                f(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrim(std::marker::PhantomData)
            }
        }
    )*};
}
arbitrary_prim! {
    bool => |rng| rng.next_u64() & 1 == 1,
    u8 => |rng| rng.next_u64() as u8,
    u16 => |rng| rng.next_u64() as u16,
    u32 => |rng| rng.next_u64() as u32,
    u64 => |rng| rng.next_u64(),
    usize => |rng| rng.next_u64() as usize,
    i32 => |rng| rng.next_u64() as i32,
    i64 => |rng| rng.next_u64() as i64,
    f64 => |rng| rng.unit_f64(),
}

/// The canonical strategy for `T` (proptest-compatible entry point).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

// ---------------------------------------------------------------------
// Collection / option strategies
// ---------------------------------------------------------------------

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Admissible size arguments for [`vec()`].
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Vector of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span + 1) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies over `Option`.
pub mod option {
    use super::{Strategy, TestRng};

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The input was rejected (unused by this stand-in, kept for parity).
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(reason: impl Display) -> Self {
        TestCaseError::Fail(reason.to_string())
    }

    /// Builds a rejection.
    pub fn reject(reason: impl Display) -> Self {
        TestCaseError::Reject(reason.to_string())
    }
}

impl Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
        }
    }
}

/// Runner configuration.
pub mod test_runner {
    /// How the [`crate::proptest!`] macro drives each test.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // PROPTEST_CASES mirrors upstream's env override.
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            Config { cases }
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Declares property tests (proptest-compatible syntax, no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::test_runner::Config as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut proptest_rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err(e) => panic!(
                            "proptest {} failed at case {case}/{}: {e}",
                            stringify!($name),
                            config.cases,
                        ),
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the case (not panicking)
/// when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (`{:?}` != `{:?}`)",
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Weighted (or unweighted) choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((($weight) as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// The glob-import surface tests use (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, Strategy,
        TestCaseError,
    };
    /// Namespace alias matching upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::{collection, option};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::for_case("t", 0);
        let s = (0u32..10, 5.0f64..6.0);
        for _ in 0..100 {
            let (a, b) = s.generate(&mut rng);
            assert!(a < 10);
            assert!((5.0..6.0).contains(&b));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = crate::TestRng::for_case("arms", 0);
        let s = prop_oneof![1 => Just(1u32), 1 => Just(2u32), 3 => Just(3u32)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn string_pattern_respects_class_and_len() {
        let mut rng = crate::TestRng::for_case("pat", 1);
        let s = "[ -~]{0,64}";
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(v.len() <= 64);
            assert!(v.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let a = {
            let mut rng = crate::TestRng::for_case("same", 3);
            (0.0f64..1.0).generate(&mut rng)
        };
        let b = {
            let mut rng = crate::TestRng::for_case("same", 3);
            (0.0f64..1.0).generate(&mut rng)
        };
        assert_eq!(a, b);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u32),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let s = (0u32..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            });
        let mut rng = crate::TestRng::for_case("tree", 0);
        for _ in 0..50 {
            assert!(depth(&s.generate(&mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself works end to end.
        #[test]
        fn macro_smoke(a in 0u32..50, b in 0u32..50) {
            prop_assert!(a < 50 && b < 50);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
