//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the workspace vendors the small slice of the `rand` 0.8 API it actually
//! uses: [`Rng::gen_range`] / [`Rng::gen_bool`] / [`Rng::gen`],
//! [`SeedableRng::seed_from_u64`], and the [`rngs::StdRng`] /
//! [`rngs::SmallRng`] generator types.
//!
//! Both generators are xoshiro256++ seeded through SplitMix64 — high-quality,
//! fast, and fully deterministic across platforms, which is all the
//! workload generators and experiments require. The streams differ from
//! upstream `rand` (which uses ChaCha12 for `StdRng`), so seeds produce
//! different — but still reproducible — workloads.

// Vendored stand-in: exempt from the workspace lint policy.
#![allow(clippy::all, dead_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from the full value domain
/// (the stand-in for `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draws a uniform value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample_standard(rng);
        // Clamp below end: rounding may land exactly on `end`.
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        f64::sample_standard(self) < p
    }

    /// Draws a uniform value of `T`'s full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step, used to expand seeds into xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ core shared by both generator types.
#[derive(Clone, Debug)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Stand-in for `rand::rngs::StdRng` (xoshiro256++ here).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::seed_from_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Stand-in for `rand::rngs::SmallRng` (same engine as [`StdRng`]).
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::seed_from_u64(seed))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn float_range_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn int_ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(1..=4);
            assert!((1..=4).contains(&v));
            seen_lo |= v == 1;
            seen_hi |= v == 4;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
