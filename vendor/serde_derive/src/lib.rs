//! Offline stand-in for serde's derive macros.
//!
//! Built on the raw `proc_macro` API (no `syn`/`quote` — those are equally
//! unavailable offline). The macros parse the item token stream directly
//! and emit impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! traits, which route through `serde::Value`.
//!
//! Supported shapes (everything this workspace derives):
//! - structs with named fields, including `#[serde(default)]`,
//!   `#[serde(default = "path")]`, and `#[serde(flatten)]` field attributes;
//!   missing `Option<T>` fields deserialize to `None`
//! - newtype structs (`struct JobId(pub u64)`)
//! - unit-variant enums with `#[serde(rename_all = "snake_case")]`
//! - internally tagged enums (`#[serde(tag = "...")]`) with struct and
//!   unit variants
//!
//! Anything else (generics, tuple variants, other attributes) fails the
//! build with an explicit message rather than mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------
// Token cursor
// ---------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.bump() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive: expected {what}, found {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// Parsed model
// ---------------------------------------------------------------------

#[derive(Default, Clone)]
struct SerdeMeta {
    tag: Option<String>,
    rename_all_snake: bool,
    /// `Some(None)` = `default`, `Some(Some(p))` = `default = "p"`.
    default: Option<Option<String>>,
    flatten: bool,
}

struct Field {
    ident: String,
    default: Option<Option<String>>,
    flatten: bool,
    is_option: bool,
}

struct Variant {
    ident: String,
    /// `None` for unit variants.
    fields: Option<Vec<Field>>,
}

enum Body {
    Struct(Vec<Field>),
    Newtype,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    attrs: SerdeMeta,
    body: Body,
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn strip_quotes(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn parse_attrs(c: &mut Cursor) -> SerdeMeta {
    let mut meta = SerdeMeta::default();
    while c.at_punct('#') {
        c.bump();
        let group = match c.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("serde derive: malformed attribute: {other:?}"),
        };
        let mut inner = Cursor::new(group.stream());
        let name = match inner.bump() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            _ => continue,
        };
        if name != "serde" {
            continue; // doc comments and other attributes
        }
        let args = match inner.bump() {
            Some(TokenTree::Group(g)) => g,
            _ => continue,
        };
        let mut a = Cursor::new(args.stream());
        while let Some(tok) = a.bump() {
            let key = match tok {
                TokenTree::Ident(i) => i.to_string(),
                _ => continue, // separating commas
            };
            let mut value = None;
            if a.at_punct('=') {
                a.bump();
                match a.bump() {
                    Some(TokenTree::Literal(l)) => value = Some(strip_quotes(&l.to_string())),
                    other => {
                        panic!("serde derive: expected literal after `{key} =`, found {other:?}")
                    }
                }
            }
            match key.as_str() {
                "tag" => meta.tag = value,
                "rename_all" => {
                    if value.as_deref() != Some("snake_case") {
                        panic!("serde derive: only rename_all = \"snake_case\" is supported");
                    }
                    meta.rename_all_snake = true;
                }
                "default" => meta.default = Some(value),
                "flatten" => meta.flatten = true,
                other => panic!("serde derive: unsupported serde attribute `{other}`"),
            }
        }
    }
    meta
}

fn skip_visibility(c: &mut Cursor) {
    if matches!(c.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        c.bump();
        if matches!(c.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            c.bump(); // pub(crate) etc.
        }
    }
}

/// Consumes one type (up to a top-level comma) and reports whether its
/// head path is `Option`.
fn parse_type_is_option(c: &mut Cursor) -> bool {
    let mut depth = 0i32;
    let mut toks = Vec::new();
    while let Some(t) = c.peek() {
        match t {
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            _ => {}
        }
        toks.push(c.bump().unwrap());
    }
    let mut last_ident = None;
    for t in &toks {
        match t {
            TokenTree::Ident(i) => last_ident = Some(i.to_string()),
            TokenTree::Punct(p) if p.as_char() == ':' => {}
            _ => break, // '<' of the generic args, or a non-path type
        }
    }
    last_ident.as_deref() == Some("Option")
}

fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let attrs = parse_attrs(&mut c);
        skip_visibility(&mut c);
        let ident = c.expect_ident("field name");
        assert!(
            c.at_punct(':'),
            "serde derive: expected `:` after field `{ident}`"
        );
        c.bump();
        let is_option = parse_type_is_option(&mut c);
        if c.at_punct(',') {
            c.bump();
        }
        fields.push(Field {
            ident,
            default: attrs.default,
            flatten: attrs.flatten,
            is_option,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        let _attrs = parse_attrs(&mut c);
        let ident = c.expect_ident("variant name");
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                c.bump();
                Some(parse_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde derive: tuple variant `{ident}` is unsupported")
            }
            _ => None,
        };
        if c.at_punct(',') {
            c.bump();
        }
        variants.push(Variant { ident, fields });
    }
    variants
}

fn parse_item(ts: TokenStream) -> Item {
    let mut c = Cursor::new(ts);
    let attrs = parse_attrs(&mut c);
    skip_visibility(&mut c);
    let kw = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("type name");
    if c.at_punct('<') {
        panic!("serde derive: generic type `{name}` is unsupported");
    }
    let body = match (kw.as_str(), c.bump()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Body::Struct(parse_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let n = Cursor::new(g.stream());
            let commas = n
                .toks
                .iter()
                .filter(|t| matches!(t, TokenTree::Punct(p) if p.as_char() == ','))
                .count();
            if commas > 1 {
                panic!("serde derive: multi-field tuple struct `{name}` is unsupported");
            }
            Body::Newtype
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Body::Enum(parse_variants(g.stream()))
        }
        (kw, other) => panic!("serde derive: cannot handle {kw} body {other:?}"),
    };
    Item { name, attrs, body }
}

fn snake(name: &str) -> String {
    let mut out = String::new();
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

fn variant_key(item: &Item, variant: &str) -> String {
    if item.attrs.rename_all_snake {
        snake(variant)
    } else {
        variant.to_string()
    }
}

// ---------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------

/// One field pushed into `__serde_map`; `expr` evaluates to something
/// serializable (`&self.f` or a match binding).
fn ser_field(expr: &str, field: &Field) -> String {
    let id = &field.ident;
    if field.flatten {
        format!(
            "match ::serde::to_value({expr}) {{\n\
                 ::std::result::Result::Ok(::serde::Value::Map(__serde_m)) => __serde_map.extend(__serde_m),\n\
                 ::std::result::Result::Ok(_) => return ::std::result::Result::Err(<S::Error as ::serde::ser::Error>::custom(\"flattened field `{id}` did not serialize to a map\")),\n\
                 ::std::result::Result::Err(__serde_e) => return ::std::result::Result::Err(<S::Error as ::serde::ser::Error>::custom(__serde_e)),\n\
             }}\n"
        )
    } else {
        format!(
            "match ::serde::to_value({expr}) {{\n\
                 ::std::result::Result::Ok(__serde_v) => __serde_map.push((\"{id}\".to_string(), __serde_v)),\n\
                 ::std::result::Result::Err(__serde_e) => return ::std::result::Result::Err(<S::Error as ::serde::ser::Error>::custom(__serde_e)),\n\
             }}\n"
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Newtype => "::serde::Serialize::serialize(&self.0, serializer)".to_string(),
        Body::Struct(fields) => {
            let mut s = String::from(
                "let mut __serde_map: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields {
                s += &ser_field(&format!("&self.{}", f.ident), f);
            }
            s += "serializer.serialize_value(::serde::Value::Map(__serde_map))";
            s
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            if let Some(tag) = &item.attrs.tag {
                for v in variants {
                    let key = variant_key(item, &v.ident);
                    let vi = &v.ident;
                    match &v.fields {
                        None => {
                            arms += &format!(
                                "{name}::{vi} => serializer.serialize_value(::serde::Value::Map(vec![(\"{tag}\".to_string(), ::serde::Value::Str(\"{key}\".to_string()))])),\n"
                            );
                        }
                        Some(fields) => {
                            let pat: Vec<&str> = fields.iter().map(|f| f.ident.as_str()).collect();
                            let mut arm = format!(
                                "{name}::{vi} {{ {} }} => {{\n\
                                     let mut __serde_map: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = vec![(\"{tag}\".to_string(), ::serde::Value::Str(\"{key}\".to_string()))];\n",
                                pat.join(", ")
                            );
                            for f in fields {
                                arm += &ser_field(&f.ident, f);
                            }
                            arm +=
                                "serializer.serialize_value(::serde::Value::Map(__serde_map))\n}\n";
                            arms += &arm;
                        }
                    }
                }
            } else {
                for v in variants {
                    let key = variant_key(item, &v.ident);
                    let vi = &v.ident;
                    if v.fields.is_some() {
                        panic!(
                            "serde derive: enum `{name}` has data-carrying variant `{vi}` but no #[serde(tag)]"
                        );
                    }
                    arms += &format!("{name}::{vi} => serializer.serialize_str(\"{key}\"),\n");
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, serializer: S) -> ::std::result::Result<S::Ok, S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

// ---------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------

/// Emits `let __serde_f{i} = ...;` bindings extracting `fields` from a
/// `__serde_map` in scope, plus the struct-literal field list.
fn field_takes(name: &str, fields: &[Field]) -> (String, String) {
    let mut lets = String::new();
    let mut literal = String::new();
    // Named fields first; the flatten field (at most one) absorbs whatever
    // keys remain, matching serde's internally-tagged + flatten semantics.
    let flatten_count = fields.iter().filter(|f| f.flatten).count();
    assert!(
        flatten_count <= 1,
        "serde derive: `{name}` has {flatten_count} flattened fields; at most one is supported"
    );
    for (i, f) in fields.iter().enumerate() {
        if f.flatten {
            continue;
        }
        let id = &f.ident;
        let missing = match (&f.default, f.is_option) {
            (Some(None), _) => "::std::default::Default::default()".to_string(),
            (Some(Some(path)), _) => format!("{path}()"),
            (None, true) => "::std::option::Option::None".to_string(),
            (None, false) => format!(
                "return ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\"missing field `{id}` in `{name}`\"))"
            ),
        };
        lets += &format!(
            "let __serde_f{i} = match ::serde::map_take(&mut __serde_map, \"{id}\") {{\n\
                 ::std::option::Option::Some(__serde_v) => match ::serde::from_value(__serde_v) {{\n\
                     ::std::result::Result::Ok(__serde_x) => __serde_x,\n\
                     ::std::result::Result::Err(__serde_e) => return ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(::std::format!(\"field `{id}` of `{name}`: {{}}\", __serde_e))),\n\
                 }},\n\
                 ::std::option::Option::None => {missing},\n\
             }};\n"
        );
    }
    for (i, f) in fields.iter().enumerate() {
        if !f.flatten {
            continue;
        }
        let id = &f.ident;
        lets += &format!(
            "let __serde_f{i} = match ::serde::from_value(::serde::Value::Map(::std::mem::take(&mut __serde_map))) {{\n\
                 ::std::result::Result::Ok(__serde_x) => __serde_x,\n\
                 ::std::result::Result::Err(__serde_e) => return ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(::std::format!(\"flattened field `{id}` of `{name}`: {{}}\", __serde_e))),\n\
             }};\n"
        );
    }
    for (i, f) in fields.iter().enumerate() {
        literal += &format!("{}: __serde_f{i}, ", f.ident);
    }
    (lets, literal)
}

fn expect_map(name: &str) -> String {
    format!(
        "let mut __serde_map = match __serde_value {{\n\
             ::serde::Value::Map(__serde_m) => __serde_m,\n\
             __serde_other => return ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\"expected object for `{name}`\")),\n\
         }};\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Newtype => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(deserializer)?))"
        ),
        Body::Struct(fields) => {
            let (lets, literal) = field_takes(name, fields);
            format!(
                "let __serde_value = ::serde::Deserializer::take_value(deserializer)?;\n\
                 {}\
                 {lets}\
                 ::std::result::Result::Ok({name} {{ {literal} }})",
                expect_map(name)
            )
        }
        Body::Enum(variants) => {
            if let Some(tag) = &item.attrs.tag {
                let mut arms = String::new();
                for v in variants {
                    let key = variant_key(item, &v.ident);
                    let vi = &v.ident;
                    match &v.fields {
                        None => {
                            arms +=
                                &format!("\"{key}\" => ::std::result::Result::Ok({name}::{vi}),\n");
                        }
                        Some(fields) => {
                            let (lets, literal) = field_takes(name, fields);
                            arms += &format!(
                                "\"{key}\" => {{\n{lets}::std::result::Result::Ok({name}::{vi} {{ {literal} }})\n}},\n"
                            );
                        }
                    }
                }
                format!(
                    "let __serde_value = ::serde::Deserializer::take_value(deserializer)?;\n\
                     {}\
                     let __serde_tag = match ::serde::map_take(&mut __serde_map, \"{tag}\") {{\n\
                         ::std::option::Option::Some(::serde::Value::Str(__serde_s)) => __serde_s,\n\
                         ::std::option::Option::Some(_) => return ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\"tag `{tag}` of `{name}` must be a string\")),\n\
                         ::std::option::Option::None => return ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\"missing tag `{tag}` for `{name}`\")),\n\
                     }};\n\
                     match __serde_tag.as_str() {{\n\
                         {arms}\
                         __serde_other => ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(::std::format!(\"unknown variant `{{}}` for `{name}`\", __serde_other))),\n\
                     }}",
                    expect_map(name)
                )
            } else {
                let mut arms = String::new();
                for v in variants {
                    let key = variant_key(item, &v.ident);
                    arms += &format!(
                        "\"{key}\" => ::std::result::Result::Ok({name}::{}),\n",
                        v.ident
                    );
                }
                format!(
                    "match ::serde::Deserializer::take_value(deserializer)? {{\n\
                         ::serde::Value::Str(__serde_s) => match __serde_s.as_str() {{\n\
                             {arms}\
                             __serde_other => ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(::std::format!(\"unknown variant `{{}}` for `{name}`\", __serde_other))),\n\
                         }},\n\
                         _ => ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\"expected string for enum `{name}`\")),\n\
                     }}"
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D) -> ::std::result::Result<Self, D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde derive: generated Serialize impl failed to parse")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde derive: generated Deserialize impl failed to parse")
}
