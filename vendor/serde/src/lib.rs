//! Offline stand-in for the `serde` serialization framework.
//!
//! The build environment has no crates.io access, so this crate vendors the
//! slice of the serde 1.x API the workspace uses. Unlike upstream serde —
//! which streams through a visitor — this stand-in routes everything
//! through an owned [`Value`] tree: serializers implement
//! [`Serializer::serialize_value`], deserializers implement
//! [`Deserializer::take_value`], and the derive macros (re-exported from
//! `serde_derive`) build or destructure [`Value`] maps. That is dramatically
//! simpler and fully sufficient for the JSON specs this project reads and
//! writes; the derives support the attribute forms the workspace uses
//! (`rename_all = "snake_case"`, `tag = "..."`, `default`,
//! `default = "path"`, `flatten`).

// Vendored stand-in: exempt from the workspace lint policy.
#![allow(clippy::all, dead_code)]
#![warn(missing_docs)]

use std::fmt::{self, Display};

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data tree all (de)serialization routes through.
///
/// Numbers are stored as `f64` — exact for the integers this project
/// serializes (ids and counts well below 2^53).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map (insertion order preserved; keys are strings).
    Map(Vec<(String, Value)>),
}

/// Removes and returns the first entry with key `key` from a map body.
/// Used by derived `Deserialize` impls.
pub fn map_take(map: &mut Vec<(String, Value)>, key: &str) -> Option<Value> {
    let idx = map.iter().position(|(k, _)| k == key)?;
    Some(map.remove(idx).1)
}

/// Serialization-side error handling.
pub mod ser {
    use std::fmt::Display;

    /// Errors produced while serializing.
    pub trait Error: Sized + Display + std::fmt::Debug {
        /// Builds an error from any message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// Deserialization-side error handling.
pub mod de {
    use std::fmt::Display;

    /// Errors produced while deserializing.
    pub trait Error: Sized + Display + std::fmt::Debug {
        /// Builds an error from any message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// A data format that can consume a [`Value`] tree.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type of the format.
    type Error: ser::Error;

    /// Consumes a complete value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

    /// Serializes a string (convenience used by hand-written impls).
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Str(v.to_owned()))
    }

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Bool(v))
    }

    /// Serializes a number.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Num(v))
    }

    /// Serializes a unit / null.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Null)
    }
}

/// A data format that can produce a [`Value`] tree.
///
/// The `'de` lifetime exists for signature compatibility with upstream
/// serde; this stand-in always hands out owned data.
pub trait Deserializer<'de>: Sized {
    /// Error type of the format.
    type Error: de::Error;

    /// Produces the complete value tree.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// Types that can be serialized.
pub trait Serialize {
    /// Serializes `self` into the given format.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Types that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value from the given format.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Types deserializable without borrowing from the input (all types here).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

// ---------------------------------------------------------------------
// Value conversion entry points (used by derived impls)
// ---------------------------------------------------------------------

/// Error type for in-memory [`Value`] conversion.
#[derive(Debug, Clone)]
pub struct ValueError(pub String);

impl Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValueError {}

impl ser::Error for ValueError {
    fn custom<T: Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

impl de::Error for ValueError {
    fn custom<T: Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

/// [`Serializer`] into an in-memory [`Value`].
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;
    fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
        Ok(value)
    }
}

/// [`Deserializer`] from an in-memory [`Value`].
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = ValueError;
    fn take_value(self) -> Result<Value, ValueError> {
        Ok(self.0)
    }
}

/// Serializes any value to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, ValueError> {
    value.serialize(ValueSerializer)
}

/// Deserializes any value from a [`Value`] tree.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, ValueError> {
    T::deserialize(ValueDeserializer(value))
}

// ---------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

macro_rules! serialize_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::Num(*self as f64))
            }
        }
    )*};
}
serialize_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_owned()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.clone()))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => v.serialize(serializer),
            None => serializer.serialize_value(Value::Null),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = Vec::with_capacity(self.len());
        for item in self {
            seq.push(to_value(item).map_err(|e| ser::Error::custom(e))?);
        }
        serializer.serialize_value(Value::Seq(seq))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let seq = vec![
            to_value(&self.0).map_err(|e| ser::Error::custom(e))?,
            to_value(&self.1).map_err(|e| ser::Error::custom(e))?,
        ];
        serializer.serialize_value(Value::Seq(seq))
    }
}

// ---------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------

fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "boolean",
        Value::Num(_) => "number",
        Value::Str(_) => "string",
        Value::Seq(_) => "sequence",
        Value::Map(_) => "map",
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(de::Error::custom(format!(
                "expected boolean, found {}",
                type_name(&other)
            ))),
        }
    }
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.take_value()? {
                    Value::Num(n) => {
                        let v = n as $t;
                        if (v as f64 - n).abs() < 1e-6 {
                            Ok(v)
                        } else {
                            Err(de::Error::custom(format!(
                                "number {n} out of range for {}",
                                stringify!($t)
                            )))
                        }
                    }
                    other => Err(de::Error::custom(format!(
                        "expected number, found {}",
                        type_name(&other)
                    ))),
                }
            }
        }
    )*};
}
deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Num(n) => Ok(n),
            other => Err(de::Error::custom(format!(
                "expected number, found {}",
                type_name(&other)
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(de::Error::custom(format!(
                "expected string, found {}",
                type_name(&other)
            ))),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Null => Ok(None),
            other => from_value(other)
                .map(Some)
                .map_err(|e| de::Error::custom(e)),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Seq(items) => items
                .into_iter()
                .enumerate()
                .map(|(i, item)| {
                    from_value(item).map_err(|e| de::Error::custom(format!("element {i}: {e}")))
                })
                .collect(),
            other => Err(de::Error::custom(format!(
                "expected sequence, found {}",
                type_name(&other)
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.take_value()
    }
}

impl<'de, A: DeserializeOwned, B: DeserializeOwned> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Seq(items) if items.len() == 2 => {
                let mut it = items.into_iter();
                let a = from_value(it.next().expect("length checked"))
                    .map_err(|e| de::Error::custom(format!("tuple element 0: {e}")))?;
                let b = from_value(it.next().expect("length checked"))
                    .map_err(|e| de::Error::custom(format!("tuple element 1: {e}")))?;
                Ok((a, b))
            }
            other => Err(de::Error::custom(format!(
                "expected 2-element sequence, found {}",
                type_name(&other)
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_through_value() {
        assert_eq!(to_value(&3u32).unwrap(), Value::Num(3.0));
        assert_eq!(from_value::<u32>(Value::Num(3.0)).unwrap(), 3);
        assert_eq!(
            from_value::<Vec<f64>>(Value::Seq(vec![Value::Num(1.0), Value::Num(2.5)])).unwrap(),
            vec![1.0, 2.5]
        );
        assert_eq!(from_value::<Option<bool>>(Value::Null).unwrap(), None);
        assert_eq!(
            from_value::<Option<bool>>(Value::Bool(true)).unwrap(),
            Some(true)
        );
    }

    #[test]
    fn non_integer_rejected_for_ints() {
        assert!(from_value::<u32>(Value::Num(1.5)).is_err());
        assert!(from_value::<u64>(Value::Str("x".into())).is_err());
    }

    #[test]
    fn map_take_removes_first_match() {
        let mut m = vec![
            ("a".to_string(), Value::Num(1.0)),
            ("b".to_string(), Value::Num(2.0)),
        ];
        assert_eq!(map_take(&mut m, "b"), Some(Value::Num(2.0)));
        assert_eq!(map_take(&mut m, "b"), None);
        assert_eq!(m.len(), 1);
    }
}
